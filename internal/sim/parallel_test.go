package sim

import (
	"strings"
	"testing"

	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/isa"
)

func costModel() *arraymodel.CostModel {
	return arraymodel.New(arraymodel.Config{Tech: device.STTMRAM, Rows: 64, Cols: 64, DataWidth: 256})
}

func TestParallelNeverExceedsSerial(t *testing.T) {
	prog := isa.Program{
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindWrite, Array: 1, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"b"}},
		{Kind: isa.KindRead, Array: 0, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindRead, Array: 1, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{1}},
		{Kind: isa.KindWrite, Array: 1, Cols: []int{0}, Rows: []int{1}},
	}
	m := costModel()
	serial, err := Measure(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureParallel(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	if par.LatencyNS > serial.LatencyNS {
		t.Fatalf("parallel %.1f > serial %.1f", par.LatencyNS, serial.LatencyNS)
	}
	if par.EnergyPJ != serial.EnergyPJ {
		t.Fatal("parallel timing must not change energy")
	}
}

func TestParallelOverlapsIndependentArrays(t *testing.T) {
	// Two arrays doing identical independent work (local reads/writes, no
	// bus): the makespan must be close to one array's serial time.
	var prog isa.Program
	for a := 0; a < 2; a++ {
		prog = append(prog,
			isa.Instruction{Kind: isa.KindRead, Array: a, Cols: []int{0}, Rows: []int{0}},
			isa.Instruction{Kind: isa.KindWrite, Array: a, Cols: []int{0}, Rows: []int{1}},
			isa.Instruction{Kind: isa.KindRead, Array: a, Cols: []int{0}, Rows: []int{1}},
			isa.Instruction{Kind: isa.KindWrite, Array: a, Cols: []int{0}, Rows: []int{2}},
		)
	}
	m := costModel()
	serial, _ := Measure(prog, m)
	par, err := MeasureParallel(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ~2x overlap.
	if par.LatencyNS > 0.6*serial.LatencyNS {
		t.Errorf("independent arrays barely overlapped: parallel %.1f vs serial %.1f",
			par.LatencyNS, serial.LatencyNS)
	}
}

func TestParallelRespectsTrueDependence(t *testing.T) {
	// Array 1 consumes array 0's result over the bus: no overlap possible.
	prog := isa.Program{
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindRead, Array: 0, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Array: 1, Cols: []int{0}, Rows: []int{0}, HasSrcArray: true, SrcArray: 0},
		{Kind: isa.KindRead, Array: 1, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Array: 1, Cols: []int{0}, Rows: []int{1}},
	}
	m := costModel()
	serial, _ := Measure(prog, m)
	par, err := MeasureParallel(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	// Fully serial chain: the makespan equals the serial sum.
	if diff := serial.LatencyNS - par.LatencyNS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("dependent chain: parallel %.2f != serial %.2f", par.LatencyNS, serial.LatencyNS)
	}
}

func TestParallelBusSerializesHostWrites(t *testing.T) {
	// Host writes to different arrays share the bus: no overlap for them.
	prog := isa.Program{
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindWrite, Array: 1, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"b"}},
		{Kind: isa.KindWrite, Array: 2, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"c"}},
	}
	m := costModel()
	serial, _ := Measure(prog, m)
	par, err := MeasureParallel(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	if diff := serial.LatencyNS - par.LatencyNS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("host writes overlapped despite the shared bus: %.2f vs %.2f",
			par.LatencyNS, serial.LatencyNS)
	}
}

func TestParallelInvalidProgram(t *testing.T) {
	if _, err := MeasureParallel(isa.Program{{Kind: isa.KindShift}}, costModel()); err == nil {
		t.Error("invalid instruction accepted")
	}
}

func TestScheduleEventsConsistent(t *testing.T) {
	prog := isa.Program{
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
		{Kind: isa.KindRead, Array: 0, Cols: []int{0}, Rows: []int{0}},
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{1}},
	}
	m := costModel()
	events, cost, err := Schedule(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(prog) {
		t.Fatalf("events = %d, want %d", len(events), len(prog))
	}
	last := 0.0
	for i, e := range events {
		if e.Index != i {
			t.Errorf("event %d has index %d", i, e.Index)
		}
		if e.FinishNS <= e.StartNS {
			t.Errorf("event %d: non-positive duration", i)
		}
		// This program is a pure dependence chain: strictly ordered.
		if e.StartNS < last {
			t.Errorf("event %d starts before its predecessor finished", i)
		}
		last = e.FinishNS
	}
	if events[len(events)-1].FinishNS != cost.LatencyNS {
		t.Error("makespan does not match last finish")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	prog := isa.Program{
		{Kind: isa.KindWrite, Array: 0, Cols: []int{0}, Rows: []int{0}, Bindings: []string{"a"}},
	}
	events, _, err := Schedule(prog, costModel())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimelineCSV(&sb, events); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "start_ns") || !strings.Contains(out, "Write [0][0][0] <a>") {
		t.Errorf("CSV malformed:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("want header + 1 row, got:\n%s", out)
	}
}
