package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
)

// streamTestProg is a 2-input AND kernel with its output at [0][0][2].
func streamTestProg(t *testing.T) *Exec {
	t.Helper()
	text := `
Write [0][0][0] <a>
Write [0][0][1] <b>
Read [0][0][0,1] [AND]
Write [0][0][2]
`
	p, err := isa.ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Predecode(p, smallTarget())
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

var streamOutPlace = layout.Place{Array: 0, Col: 0, Row: 2}

// streamInputs builds slot-major packed inputs (stride W) with a
// deterministic pseudo-random fill, returning the block and the expected
// AND output (dead lanes zeroed).
func streamInputs(e *Exec, lanes int) (in, want []uint64) {
	W := (lanes + 63) / 64
	sa, _ := e.Slot("a")
	sb, _ := e.Slot("b")
	in = make([]uint64, e.NumSlots()*W)
	want = make([]uint64, W)
	x := uint64(0x9e3779b97f4a7c15)
	for w := 0; w < W; w++ {
		x ^= x << 13
		x ^= x >> 7
		a := x * 0x2545f4914f6cdd1d
		x ^= x << 17
		b := x * 0x9e3779b97f4a7c15
		in[sa*W+w] = a
		in[sb*W+w] = b
		want[w] = a & b
	}
	if rem := lanes % 64; rem != 0 {
		want[W-1] &= uint64(1)<<uint(rem) - 1
	}
	return in, want
}

// streamCollect runs one stream over lanes and gathers the output words
// into a full-width block via pack/reduce callbacks.
func streamCollect(t *testing.T, e *Exec, st *Stream, lanes int) []uint64 {
	t.Helper()
	W := (lanes + 63) / 64
	in, _ := streamInputs(e, lanes)
	got := make([]uint64, W)
	numIn := e.NumSlots()
	var mu sync.Mutex
	pack := func(m *ExecMachine, chunk, start, n int) error {
		w0 := start / 64
		gw := (n + 63) / 64
		B := m.BlockWords()
		dst := m.InputBlock()
		for s := 0; s < numIn; s++ {
			copy(dst[s*B:s*B+gw], in[s*W+w0:s*W+w0+gw])
		}
		return nil
	}
	bufs := make([][]uint64, st.Shards())
	for i := range bufs {
		bufs[i] = make([]uint64, st.BlockWords())
	}
	reduce := func(shard int, m *ExecMachine, chunk, start, n int) error {
		buf := bufs[shard]
		cw, err := m.OutWords(streamOutPlace, buf)
		if err != nil {
			return err
		}
		mu.Lock()
		copy(got[start/64:start/64+cw], buf[:cw])
		mu.Unlock()
		return nil
	}
	if err := st.Run(lanes, pack, reduce); err != nil {
		t.Fatalf("stream run (%d lanes): %v", lanes, err)
	}
	return got
}

// TestStreamMatchesReference drives the pipeline across awkward chunk
// edges in both overlap modes and at several shard counts; every word of
// the streamed output must equal the host-computed AND.
func TestStreamMatchesReference(t *testing.T) {
	e := streamTestProg(t)
	laneCases := []int{1, 63, 64, 65, 127, 128, 129, 255, 256, 257, 1000, 1023, 1024, 1025}
	for _, serial := range []bool{false, true} {
		for _, shards := range []int{1, 3} {
			st, err := NewStream(e, StreamConfig{BlockWords: 2, Shards: shards, Serial: serial})
			if err != nil {
				t.Fatal(err)
			}
			for _, lanes := range laneCases {
				_, want := streamInputs(e, lanes)
				got := streamCollect(t, e, st, lanes)
				for w := range want {
					if got[w] != want[w] {
						t.Errorf("serial=%v shards=%d lanes=%d: word %d = %#x, want %#x",
							serial, shards, lanes, w, got[w], want[w])
					}
				}
			}
			st.Close()
		}
	}
}

// TestStreamReuse pins the zero-steady-state contract's precondition: one
// Stream must produce correct results across many back-to-back runs of
// varying width.
func TestStreamReuse(t *testing.T) {
	e := streamTestProg(t)
	st, err := NewStream(e, StreamConfig{BlockWords: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 20; i++ {
		lanes := 1 + (i*97)%500
		_, want := streamInputs(e, lanes)
		got := streamCollect(t, e, st, lanes)
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("run %d lanes=%d: word %d = %#x, want %#x", i, lanes, w, got[w], want[w])
			}
		}
	}
}

// TestStreamLowestChunkError: when several chunks fail, Run reports the
// one a sequential run would have hit first.
func TestStreamLowestChunkError(t *testing.T) {
	e := streamTestProg(t)
	for _, serial := range []bool{false, true} {
		st, err := NewStream(e, StreamConfig{BlockWords: 1, Shards: 3, Serial: serial})
		if err != nil {
			t.Fatal(err)
		}
		pack := func(m *ExecMachine, chunk, start, n int) error {
			if chunk >= 2 {
				return fmt.Errorf("boom chunk %d", chunk)
			}
			clear(m.InputBlock())
			return nil
		}
		reduce := func(shard int, m *ExecMachine, chunk, start, n int) error { return nil }
		err = st.Run(64*64, pack, reduce)
		if err == nil || !strings.Contains(err.Error(), "boom chunk 2") {
			t.Errorf("serial=%v: want lowest-chunk error 'boom chunk 2', got %v", serial, err)
		}
		// The stream must stay usable after a failed run.
		if err := st.Run(100, pack2OK(e), reduce); err != nil {
			t.Errorf("serial=%v: run after failure: %v", serial, err)
		}
		st.Close()
	}
}

func pack2OK(e *Exec) PackFunc {
	return func(m *ExecMachine, chunk, start, n int) error {
		clear(m.InputBlock())
		return nil
	}
}

// TestStreamReduceError propagates reducer failures too.
func TestStreamReduceError(t *testing.T) {
	e := streamTestProg(t)
	st, err := NewStream(e, StreamConfig{BlockWords: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reduce := func(shard int, m *ExecMachine, chunk, start, n int) error {
		if chunk == 1 {
			return fmt.Errorf("reduce boom")
		}
		return nil
	}
	if err := st.Run(64*8, pack2OK(e), reduce); err == nil || !strings.Contains(err.Error(), "reduce boom") {
		t.Errorf("want reduce error, got %v", err)
	}
}

// TestStreamClose: Close is idempotent and Run after Close fails cleanly.
func TestStreamClose(t *testing.T) {
	e := streamTestProg(t)
	st, err := NewStream(e, StreamConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close()
	err = st.Run(64, pack2OK(e), func(int, *ExecMachine, int, int, int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Run on closed stream: got %v", err)
	}
}

// TestStreamAutoBlockWords: auto sizing stays within its documented
// bounds and gives tiny kernels wide chunks.
func TestStreamAutoBlockWords(t *testing.T) {
	e := streamTestProg(t)
	b := autoBlockWords(e)
	if b < DefaultBlockWords || b > MaxStreamBlockWords {
		t.Fatalf("autoBlockWords = %d outside [%d,%d]", b, DefaultBlockWords, MaxStreamBlockWords)
	}
	if b != MaxStreamBlockWords {
		t.Errorf("tiny kernel should auto-size to the cap, got %d", b)
	}
	st, err := NewStream(e, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.ChunkLanes() != b*WordLanes {
		t.Errorf("ChunkLanes = %d, want %d", st.ChunkLanes(), b*WordLanes)
	}
}
