package sim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"sherlock/internal/device"
	"sherlock/internal/layout"
)

// DefaultBlockWords is the lane-block width used by callers that want more
// data per decoded pass than one word: 4 words = 256 lanes.
const DefaultBlockWords = 4

// ExecMachine executes one pre-decoded program over a lane BLOCK of up to
// BlockWords()*64 independent input vectors per pass. State is flat and
// cell-major: cell (or row-buffer bit) offset k occupies words
// [k*B, k*B+B), word b carrying lanes 64b..64b+63. Loops touch only the
// activeWords = ceil(lanes/64) leading words of each block, so a wide
// machine running few lanes pays for few. Dead lanes (and inactive words)
// carry garbage; readout masks them.
//
// There are no defined masks: definedness was discharged at decode time,
// which is what makes Reset O(1) in the cell count — stale cell payloads
// cannot leak because every read the program performs is dominated by a
// same-run write (Predecode proved it).
type ExecMachine struct {
	e     *Exec
	block int // B: words per cell

	lanes       int
	activeWords int
	lastMask    uint64 // live-lane mask of the last active word

	cells []uint64 // numCells * B
	buf   []uint64 // numBuf * B
	acc   []uint64 // fold scratch, B words
	in    []uint64 // input scratch, NumSlots * B; cleared by Reset

	faults     *execFaultModel
	fm         execFaultModel
	flipCounts []int // per-lane injected-fault tallies, B*64 entries
}

// NewMachine builds an executor with a lane block of blockWords words
// (1..; DefaultBlockWords is the facade's choice), initially running all
// blockWords*64 lanes.
func (e *Exec) NewMachine(blockWords int) *ExecMachine {
	if blockWords < 1 {
		panic(fmt.Sprintf("sim: lane block of %d words", blockWords))
	}
	m := &ExecMachine{
		e:          e,
		block:      blockWords,
		cells:      make([]uint64, e.numCells*blockWords),
		buf:        make([]uint64, e.numBuf*blockWords),
		acc:        make([]uint64, blockWords),
		in:         make([]uint64, len(e.inputNames)*blockWords),
		flipCounts: make([]int, blockWords*WordLanes),
	}
	m.Reset(blockWords * WordLanes)
	return m
}

// BlockWords returns B, the lane-block width in words.
func (m *ExecMachine) BlockWords() int { return m.block }

// MaxLanes returns the block's lane capacity.
func (m *ExecMachine) MaxLanes() int { return m.block * WordLanes }

// Lanes returns the active lane count.
func (m *ExecMachine) Lanes() int { return m.lanes }

// Reset prepares the machine for a fresh pass with a new lane count,
// reusing every allocation. Fault state and the input scratch clear; cell
// payloads stay (the decoded program cannot observe them).
func (m *ExecMachine) Reset(lanes int) {
	if lanes < 1 || lanes > m.MaxLanes() {
		panic(fmt.Sprintf("sim: lane count %d outside [1,%d]", lanes, m.MaxLanes()))
	}
	m.lanes = lanes
	m.activeWords = (lanes + WordLanes - 1) / WordLanes
	if rem := lanes % WordLanes; rem == 0 {
		m.lastMask = ^uint64(0)
	} else {
		m.lastMask = uint64(1)<<uint(rem) - 1
	}
	clear(m.flipCounts)
	clear(m.in)
	m.faults = nil
}

// setLanes retargets the active-lane geometry without Reset's scratch
// clears. The streaming pipeline uses it between chunks: pack overwrites
// every input slot's active words before Run, and fault injection is never
// armed on streamed machines, so the clears would be pure per-chunk
// overhead (for wide blocks, tens of kilobytes per chunk).
func (m *ExecMachine) setLanes(lanes int) {
	if lanes < 1 || lanes > m.MaxLanes() {
		panic(fmt.Sprintf("sim: lane count %d outside [1,%d]", lanes, m.MaxLanes()))
	}
	m.lanes = lanes
	m.activeWords = (lanes + WordLanes - 1) / WordLanes
	if rem := lanes % WordLanes; rem == 0 {
		m.lastMask = ^uint64(0)
	} else {
		m.lastMask = uint64(1)<<uint(rem) - 1
	}
	m.faults = nil
}

// MaskWord returns the live-lane mask of block word b (bit l set iff lane
// 64b+l is active); words at or past the active count mask to zero.
func (m *ExecMachine) MaskWord(b int) uint64 {
	if b < 0 || b >= m.activeWords {
		return 0
	}
	if b == m.activeWords-1 {
		return m.lastMask
	}
	return ^uint64(0)
}

// lanesOf returns how many lanes of block word b are live.
func (m *ExecMachine) lanesOf(b int) int {
	if b == m.activeWords-1 {
		return m.lanes - b*WordLanes
	}
	return WordLanes
}

// InputBlock exposes the machine's slot-major input scratch: word
// [slot*BlockWords()+b] carries lanes 64b..64b+63 of that input slot. Reset
// zeroes it; callers set bits and pass it to Run.
func (m *ExecMachine) InputBlock() []uint64 { return m.in }

// EnableFaultInjection arms the geometric-skip sampler for the next Run.
// The per-class P_DF values are resolved once here instead of once per
// column, and the (op, rows)-class skip streams share one RNG in the exact
// draw order of LaneMachine — same seed, same fault pattern, bit for bit.
func (m *ExecMachine) EnableFaultInjection(p device.Params, seed int64) {
	f := &m.fm
	n := len(m.e.classes)
	if cap(f.pdf) < n {
		f.pdf = make([]float64, n)
		f.rem = make([]int64, n)
		f.has = make([]bool, n)
	}
	f.pdf, f.rem, f.has = f.pdf[:n], f.rem[:n], f.has[:n]
	for i, cls := range m.e.classes {
		f.pdf[i] = p.DecisionFailure(cls.Op, cls.Rows)
	}
	clear(f.has)
	f.rng = rand.New(rand.NewSource(seed))
	m.faults = f
}

// FaultCount reports how many sense decisions were flipped in one lane.
func (m *ExecMachine) FaultCount(lane int) int {
	if lane < 0 || lane >= m.lanes {
		panic(fmt.Sprintf("sim: lane %d outside [0,%d)", lane, m.lanes))
	}
	return m.flipCounts[lane]
}

// TotalFaults reports the flips injected across the active lanes.
func (m *ExecMachine) TotalFaults() int {
	total := 0
	for _, c := range m.flipCounts[:m.lanes] {
		total += c
	}
	return total
}

func (m *ExecMachine) countFlips(b int, w uint64) {
	for w != 0 {
		m.flipCounts[b*WordLanes+bits.TrailingZeros64(w)]++
		w &= w - 1
	}
}

// Run executes the decoded program once over the active lanes. in is a
// slot-major input block (see InputBlock); every slot must be populated —
// Run performs no name resolution. RunMap is the checked, name-keyed entry.
// The only runtime failure mode left is a malformed input block; program
// errors were all discharged by Predecode.
func (m *ExecMachine) Run(in []uint64) error {
	e := m.e
	B := m.block
	if len(in) < len(e.inputNames)*B {
		return fmt.Errorf("sim: input block has %d words, need %d", len(in), len(e.inputNames)*B)
	}
	aw := m.activeWords
	cells, buf := m.cells, m.buf
	acc := m.acc[:aw]
	srcs, dsts := e.srcs, e.dsts
	for oi := range e.ops {
		op := &e.ops[oi]
		switch op.kind {
		case uopFoldAnd, uopFoldOr, uopFoldXor:
			rows := e.rowOffs[op.rows0:op.rows1]
			for i := op.p0; i < op.p1; i++ {
				base := int(srcs[i]) * B
				switch op.kind {
				case uopFoldAnd:
					for b := range acc {
						acc[b] = ^uint64(0)
					}
					for _, r := range rows {
						co := base + int(r)*B
						for b := range acc {
							acc[b] &= cells[co+b]
						}
					}
				case uopFoldOr:
					for b := range acc {
						acc[b] = 0
					}
					for _, r := range rows {
						co := base + int(r)*B
						for b := range acc {
							acc[b] |= cells[co+b]
						}
					}
				default:
					for b := range acc {
						acc[b] = 0
					}
					for _, r := range rows {
						co := base + int(r)*B
						for b := range acc {
							acc[b] ^= cells[co+b]
						}
					}
				}
				if op.inv {
					for b := range acc {
						acc[b] = ^acc[b]
					}
				}
				if m.faults != nil {
					cls := int(op.class)
					for b := range acc {
						if w := m.faults.flips(cls, m.lanesOf(b)); w != 0 {
							acc[b] ^= w
							m.countFlips(b, w)
						}
					}
				}
				do := int(dsts[i]) * B
				copy(buf[do:do+aw], acc)
			}
		case uopCopy:
			for i := op.p0; i < op.p1; i++ {
				so, do := int(srcs[i])*B, int(dsts[i])*B
				copy(buf[do:do+aw], cells[so:so+aw])
			}
		case uopHostWrite:
			for i := op.p0; i < op.p1; i++ {
				so, do := int(srcs[i])*B, int(dsts[i])*B
				copy(cells[do:do+aw], in[so:so+aw])
			}
		case uopBufWrite:
			for i := op.p0; i < op.p1; i++ {
				so, do := int(srcs[i])*B, int(dsts[i])*B
				copy(cells[do:do+aw], buf[so:so+aw])
			}
		case uopNot:
			for i := op.p0; i < op.p1; i++ {
				do := int(dsts[i]) * B
				for b := 0; b < aw; b++ {
					buf[do+b] = ^buf[do+b]
				}
			}
		case uopShift:
			m.shift(int(op.array), int(op.dist))
		}
	}
	return nil
}

// shift moves whole row-buffer columns of one array by memmove: column c's
// B-word block relocates to column c+dist, vacated columns zero. Inactive
// trailing words move as garbage, which is fine — they stay unreadable.
func (m *ExecMachine) shift(array, dist int) {
	B := m.block
	n := m.e.bufCols
	region := m.buf[array*n*B : (array+1)*n*B]
	d := dist
	if d < 0 {
		d = -d
	}
	if d >= n {
		clear(region)
		return
	}
	w := d * B
	if dist > 0 {
		copy(region[w:], region[:len(region)-w])
		clear(region[:w])
	} else {
		copy(region[:len(region)-w], region[w:])
		clear(region[len(region)-w:])
	}
}

// RunMap is Run with name-keyed input words (bit l = lane l's value), the
// LaneMachine-compatible entry: it performs the unbound-input check the
// interpreting machines do at the point of use, reporting the first
// instruction that needs a missing name with the same message. One word
// addresses at most 64 lanes, so the machine must be Reset to <= 64.
func (m *ExecMachine) RunMap(inputs map[string]uint64) error {
	if m.lanes > WordLanes {
		panic(fmt.Sprintf("sim: RunMap addresses %d lanes through single words", m.lanes))
	}
	e := m.e
	for _, u := range e.bindUses {
		if _, ok := inputs[e.inputNames[u.slot]]; !ok {
			in := e.prog[u.instr]
			return fmt.Errorf("sim: instruction %d (%s): unbound input %q", u.instr, in, e.inputNames[u.slot])
		}
	}
	clear(m.in)
	// Every name lands in its own slot word, so order is immaterial.
	for name, w := range inputs { //sherlock:allow rangemap
		if s, ok := e.slots[name]; ok {
			m.in[s*m.block] = w
		}
	}
	return m.Run(m.in)
}

// ReadOutWord returns block word b of the stored lanes at a cell (bit l =
// lane 64b+l's value), failing when the cell was never written.
func (m *ExecMachine) ReadOutWord(p layout.Place, b int) (uint64, error) {
	e := m.e
	if b < 0 || b >= m.activeWords {
		return 0, fmt.Errorf("sim: readout word %d outside %d active words", b, m.activeWords)
	}
	if p.Array < 0 || p.Array >= e.space.Arrays ||
		p.Col < 0 || p.Col >= e.space.BufCols ||
		p.Row < 0 || p.Row >= e.space.Rows {
		// Outside the decoded space nothing was ever written; the target
		// bound check folds into the same undefined-cell answer the
		// interpreting machines give.
		return 0, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	off := e.cellOff(p.Array, p.Col, p.Row)
	if !e.defined[off] {
		return 0, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	return m.cells[off*m.block+b] & m.MaskWord(b), nil
}

// OutWords is the bulk counterpart of ReadOutWord for streaming readout:
// it copies every active block word of the stored lanes at p into dst
// (word b = lanes 64b..64b+63, dead lanes of the last word masked to
// zero) and returns how many words it wrote. The bounds and definedness
// checks run once per call instead of once per word.
func (m *ExecMachine) OutWords(p layout.Place, dst []uint64) (int, error) {
	e := m.e
	aw := m.activeWords
	if len(dst) < aw {
		return 0, fmt.Errorf("sim: readout buffer has %d words, need %d", len(dst), aw)
	}
	if p.Array < 0 || p.Array >= e.space.Arrays ||
		p.Col < 0 || p.Col >= e.space.BufCols ||
		p.Row < 0 || p.Row >= e.space.Rows {
		return 0, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	off := e.cellOff(p.Array, p.Col, p.Row)
	if !e.defined[off] {
		return 0, fmt.Errorf("sim: readout of undefined cell %v", p)
	}
	base := off * m.block
	copy(dst[:aw], m.cells[base:base+aw])
	dst[aw-1] &= m.lastMask
	return aw, nil
}

// execFaultModel is the geometric-skip sampler of laneFaultModel with the
// per-column map lookups hoisted out: class -> P_DF and class -> skip state
// are dense arrays indexed by the decode-time class table, and the P_DF
// resolution happens once per EnableFaultInjection instead of once per
// column. The RNG consumption order is identical to laneFaultModel's.
type execFaultModel struct {
	rng *rand.Rand
	pdf []float64
	rem []int64
	has []bool
}

// flips returns the fault word for `lanes` decisions of one sense class,
// consuming the class's skip stream exactly as laneFaultModel.flips does.
func (f *execFaultModel) flips(cls, lanes int) uint64 {
	pdf := f.pdf[cls]
	if pdf <= 0 {
		return 0
	}
	rem := f.rem[cls]
	if !f.has[cls] {
		rem = geomGap(f.rng, pdf)
		f.has[cls] = true
	}
	var w uint64
	for rem < int64(lanes) {
		w |= uint64(1) << uint(rem)
		rem += 1 + geomGap(f.rng, pdf)
		if rem > maxGap {
			rem = maxGap
		}
	}
	f.rem[cls] = rem - int64(lanes)
	return w
}
