package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/verify"
)

// execRunWords predecodes and runs a program on a fresh block machine,
// returning the machine for readout. Word inputs are LaneMachine-style
// (bit l = lane l), so lanes <= 64.
func execRunWords(t *testing.T, prog isa.Program, target layout.Target, lanes int, words map[string]uint64) (*ExecMachine, error) {
	t.Helper()
	ex, err := Predecode(prog, target)
	if err != nil {
		return nil, err
	}
	m := ex.NewMachine(1)
	m.Reset(lanes)
	if err := m.RunMap(words); err != nil {
		return nil, err
	}
	return m, nil
}

// TestExecMatchesScalarAndLaneFuzz is the three-way differential oracle:
// random programs with random inputs must read out identically from the
// scalar Machine (one run per lane), the legacy LaneMachine (one SWAR
// pass), and the pre-decoded ExecMachine — at every lane count including
// partial words, and with garbage in the dead high lanes.
func TestExecMatchesScalarAndLaneFuzz(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 6, Cols: 5}
	rng := rand.New(rand.NewSource(23))
	laneChoices := []int{1, 2, 7, 31, 63, 64}
	for trial := 0; trial < 150; trial++ {
		pm, defined := randomProgram(rng, target, 24)
		lanes := laneChoices[trial%len(laneChoices)]

		// Every program this oracle executes must also pass the static
		// verifier: the fuzz corpus doubles as the verifier's accept-side
		// evidence (the reject side lives in verify_fuzz_test.go).
		if err := verify.Program(pm.prog, target).Err(); err != nil {
			t.Fatalf("trial %d: static verifier rejected a runnable program: %v\nprogram:\n%s",
				trial, err, pm.prog)
		}

		words := make(map[string]uint64, len(pm.names))
		perLane := make([]map[string]bool, lanes)
		for _, n := range pm.names {
			words[n] = 0
		}
		for l := 0; l < lanes; l++ {
			in := make(map[string]bool, len(pm.names))
			for _, n := range pm.names {
				v := rng.Intn(2) == 1
				in[n] = v
				if v {
					words[n] |= uint64(1) << uint(l)
				}
			}
			perLane[l] = in
		}
		if lanes < 64 {
			for _, n := range pm.names {
				words[n] |= rng.Uint64() << uint(lanes)
			}
		}

		em, err := execRunWords(t, pm.prog, target, lanes, words)
		if err != nil {
			t.Fatalf("trial %d: exec: %v\nprogram:\n%s", trial, err, pm.prog)
		}
		lm := NewLaneMachine(target, lanes)
		if err := lm.Run(pm.prog, words); err != nil {
			t.Fatalf("trial %d: lane machine: %v\nprogram:\n%s", trial, err, pm.prog)
		}
		for _, p := range defined {
			we, err := em.ReadOutWord(p, 0)
			if err != nil {
				t.Fatalf("trial %d: exec readout %v: %v", trial, p, err)
			}
			wl, err := lm.ReadOutWord(p)
			if err != nil {
				t.Fatalf("trial %d: lane readout %v: %v", trial, p, err)
			}
			if we != wl {
				t.Fatalf("trial %d cell %v: exec %#x, lane machine %#x\nprogram:\n%s",
					trial, p, we, wl, pm.prog)
			}
		}
		// Spot-check one lane against the scalar machine (the lane machine
		// itself is pinned lane-by-lane by its own fuzz test).
		l := trial % lanes
		sm := NewMachine(target)
		if err := sm.Run(pm.prog, perLane[l]); err != nil {
			t.Fatalf("trial %d lane %d: scalar machine: %v\nprogram:\n%s", trial, l, err, pm.prog)
		}
		for _, p := range defined {
			want, err := sm.ReadOut(p)
			if err != nil {
				t.Fatalf("trial %d lane %d: scalar readout %v: %v", trial, l, p, err)
			}
			we, err := em.ReadOutWord(p, 0)
			if err != nil {
				t.Fatalf("trial %d: exec readout %v: %v", trial, p, err)
			}
			if got := we>>uint(l)&1 == 1; got != want {
				t.Fatalf("trial %d lane %d cell %v: exec %v, scalar %v\nprogram:\n%s",
					trial, l, p, got, want, pm.prog)
			}
		}
	}
}

// TestExecBlockMatchesSingleWord pins the lane-block generalization: one
// B-word pass over many lanes must equal B independent single-word passes,
// at block-edge lane counts (partial last words, single lane, full block).
func TestExecBlockMatchesSingleWord(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 6, Cols: 5}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		pm, defined := randomProgram(rng, target, 20)
		ex, err := Predecode(pm.prog, target)
		if err != nil {
			t.Fatalf("trial %d: predecode: %v\nprogram:\n%s", trial, err, pm.prog)
		}
		for _, lanes := range []int{1, 63, 64, 65, 255, 256} {
			block := ex.NewMachine(4)
			block.Reset(lanes)
			in := block.InputBlock()
			B := block.BlockWords()
			// Random input words per 64-lane word, reused for the
			// single-word reference passes.
			aw := (lanes + WordLanes - 1) / WordLanes
			ref := make([]map[string]uint64, aw)
			for b := 0; b < aw; b++ {
				ref[b] = make(map[string]uint64, len(pm.names))
				for si, n := range pm.names {
					w := rng.Uint64()
					ref[b][n] = w
					if s, ok := ex.Slot(n); ok && s != si {
						t.Fatalf("slot order diverges: %q slot %d vs name index %d", n, s, si)
					}
					in[si*B+b] = w
				}
			}
			if err := block.Run(in); err != nil {
				t.Fatalf("trial %d lanes %d: block run: %v", trial, lanes, err)
			}
			for b := 0; b < aw; b++ {
				wordLanes := min(WordLanes, lanes-b*WordLanes)
				single := ex.NewMachine(1)
				single.Reset(wordLanes)
				if err := single.RunMap(ref[b]); err != nil {
					t.Fatalf("trial %d lanes %d word %d: single run: %v", trial, lanes, b, err)
				}
				for _, p := range defined {
					wb, err := block.ReadOutWord(p, b)
					if err != nil {
						t.Fatalf("trial %d lanes %d word %d: block readout %v: %v", trial, lanes, b, p, err)
					}
					ws, err := single.ReadOutWord(p, 0)
					if err != nil {
						t.Fatalf("trial %d lanes %d word %d: single readout %v: %v", trial, lanes, b, p, err)
					}
					if wb != ws {
						t.Fatalf("trial %d lanes %d word %d cell %v: block %#x, single %#x\nprogram:\n%s",
							trial, lanes, b, p, wb, ws, pm.prog)
					}
				}
			}
		}
	}
}

// TestExecStrictErrorsMatchScalar asserts the decode/run split raises
// exactly what the interpreting machines raise, message-identical. Static
// program errors move to Predecode and unbound inputs stay at run time, but
// the text the caller sees is the same either way.
func TestExecStrictErrorsMatchScalar(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 8, Cols: 4}
	cases := []struct {
		name, prog string
		inputs     map[string]bool
	}{
		{"undefined read", "Read [0][0][0]", nil},
		{"shift drops bit", "Write [0][3][0] <x>\nRead [0][3][0]\nShift [0] R[2]\nWrite [0][3][1]",
			map[string]bool{"x": true}},
		{"unbound input", "Write [0][0][0] <mystery>", map[string]bool{}},
		{"unbound later instruction", "Write [0][0][0] <x>\nWrite [0][1,2][1] <y,z>",
			map[string]bool{"x": true, "y": true}},
		{"bad array", "Write [5][0][0] <x>", map[string]bool{"x": true}},
		{"bad row", "Read [0][0][0,99] [AND]", map[string]bool{"x": true}},
		{"undefined buffer write", "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [1][0][0] @[0]\nNot [1][1]",
			map[string]bool{"x": true}},
	}
	for _, tc := range cases {
		prog, err := isa.ParseProgram(tc.prog)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		sm := NewMachine(target)
		errS := sm.Run(prog, tc.inputs)
		for _, lanes := range []int{64, 5} {
			words := make(map[string]uint64)
			for n, v := range tc.inputs {
				var w uint64
				if v {
					w = ^uint64(0)
				}
				words[n] = w
			}
			_, errE := execRunWords(t, prog, target, lanes, words)
			if (errS == nil) != (errE == nil) {
				t.Errorf("%s (lanes %d): scalar err %v, exec err %v", tc.name, lanes, errS, errE)
				continue
			}
			if errS != nil && errS.Error() != errE.Error() {
				t.Errorf("%s (lanes %d): error mismatch\nscalar: %v\nexec:   %v", tc.name, lanes, errS, errE)
			}
		}
	}
}

// TestExecFaultTalliesMatchLaneMachine pins the executor's indexed
// geometric-skip sampler to the legacy map-based one: same program, same
// seed, same per-lane flip counts AND same faulted cell contents — the RNG
// consumption order (per column, classes sharing one stream) is part of the
// determinism contract.
func TestExecFaultTalliesMatchLaneMachine(t *testing.T) {
	prog, target, _, laneIn := faultProgram(t)
	params := device.ParamsFor(device.STTMRAM)
	params.RelSDLRS, params.RelSDHRS = 0.5, 0.5 // inflate P_DF into testable range

	// Persist the faulted buffer into cells so readout can compare values.
	cols := []int{0, 1, 2, 3, 4, 5, 6, 7}
	prog = append(prog, isa.Instruction{Kind: isa.KindWrite, Array: 0, Cols: cols, Rows: []int{3}})

	ex, err := Predecode(prog, target)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 50; seed++ {
		for _, lanes := range []int{64, 17} {
			lm := NewLaneMachine(target, lanes)
			lm.EnableFaultInjection(params, seed)
			if err := lm.Run(prog, laneIn); err != nil {
				t.Fatal(err)
			}
			em := ex.NewMachine(1)
			em.Reset(lanes)
			em.EnableFaultInjection(params, seed)
			if err := em.RunMap(laneIn); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < lanes; l++ {
				if lf, ef := lm.FaultCount(l), em.FaultCount(l); lf != ef {
					t.Fatalf("seed %d lanes %d lane %d: lane machine %d flips, exec %d", seed, lanes, l, lf, ef)
				}
			}
			if lt, et := lm.TotalFaults(), em.TotalFaults(); lt != et {
				t.Fatalf("seed %d lanes %d: total flips %d vs %d", seed, lanes, lt, et)
			}
			for _, c := range cols {
				p := layout.Place{Array: 0, Col: c, Row: 3}
				wl, err := lm.ReadOutWord(p)
				if err != nil {
					t.Fatal(err)
				}
				we, err := em.ReadOutWord(p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if wl != we {
					t.Fatalf("seed %d lanes %d cell %v: faulted value %#x vs %#x", seed, lanes, p, wl, we)
				}
			}
		}
	}
}

// TestExecRunMapLaneGuard pins the RunMap lane restriction as a panic.
func TestExecRunMapLaneGuard(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 4, Cols: 2}
	prog, _ := isa.ParseProgram("Write [0][0,1][0] <a,b>")
	ex, err := Predecode(prog, target)
	if err != nil {
		t.Fatal(err)
	}
	m := ex.NewMachine(2) // 128 lanes active
	defer func() {
		if recover() == nil {
			t.Fatal("RunMap over >64 lanes did not panic")
		}
	}()
	_ = m.RunMap(map[string]uint64{"a": 1, "b": 2})
}

// TestExecResetReuse runs one pooled machine through shrinking and growing
// lane counts and checks isolation between passes.
func TestExecResetReuse(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 4, Cols: 2}
	prog, err := isa.ParseProgram("Write [0][0,1][0] <a,b>")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Predecode(prog, target)
	if err != nil {
		t.Fatal(err)
	}
	m := ex.NewMachine(1)
	p := layout.Place{Array: 0, Col: 0, Row: 0}
	for i, lanes := range []int{64, 3, 64, 1, 17} {
		m.Reset(lanes)
		if m.TotalFaults() != 0 {
			t.Fatalf("pass %d: fault counts survived Reset", i)
		}
		want := rand.New(rand.NewSource(int64(i))).Uint64()
		if err := m.RunMap(map[string]uint64{"a": want, "b": ^want}); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		w, err := m.ReadOutWord(p, 0)
		if err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		if mask := m.MaskWord(0); w != want&mask {
			t.Fatalf("pass %d (lanes %d): readout %#x, want %#x", i, lanes, w, want&mask)
		}
	}
}

// TestExecSlotOrderMatchesBindings pins the invariant the facade relies on:
// Predecode's slot order is the program's first-use binding order,
// isa.Program.Bindings.
func TestExecSlotOrderMatchesBindings(t *testing.T) {
	target := layout.Target{Arrays: 2, Rows: 6, Cols: 5}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		pm, _ := randomProgram(rng, target, 16)
		ex, err := Predecode(pm.prog, target)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := pm.prog.Bindings()
		got := ex.InputNames()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d slots vs %d bindings", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d slot %d: %q vs %q", trial, i, got[i], want[i])
			}
			if s, ok := ex.Slot(want[i]); !ok || s != i {
				t.Fatalf("trial %d: Slot(%q) = %d,%v, want %d", trial, want[i], s, ok, i)
			}
		}
	}
}

// TestPredecodeClampsHostileSpace checks that an out-of-target coordinate
// fails decoding with the machines' message instead of inflating the
// decode-time allocations.
func TestPredecodeClampsHostileSpace(t *testing.T) {
	target := layout.Target{Arrays: 1, Rows: 4, Cols: 4}
	prog := isa.Program{
		{Kind: isa.KindWrite, Array: 0, Cols: []int{1 << 30}, Rows: []int{0}, Bindings: []string{"x"}},
	}
	_, err := Predecode(prog, target)
	want := fmt.Sprintf("sim: instruction 0 (%s): sim: column %d outside target", prog[0], 1<<30)
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
}
