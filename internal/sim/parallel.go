package sim

import (
	"fmt"
	"io"

	"sherlock/internal/arraymodel"
	"sherlock/internal/isa"
)

// MeasureParallel accounts the program under the multi-array execution
// model: each array is an independent execution unit with its own command
// sequencer, so instructions on different arrays overlap as long as their
// data dependencies allow. This exposes the subarray-level parallelism the
// paper's target system provides (Sec. 2.1). The model is a list schedule:
//
//   - an instruction starts when its array is free, its resource hazards
//     (RAW/WAR/WAW over cells and row-buffer bits) are resolved, and — for
//     host writes and cross-array writes — the shared bus is free;
//   - total latency is the makespan; energy is unchanged from Measure.
//
// Program order is respected per array; across arrays only true
// dependences serialize.
func MeasureParallel(p isa.Program, m *arraymodel.CostModel) (Cost, error) {
	_, cost, err := Schedule(p, m)
	return cost, err
}

// Event is one instruction's slot in the parallel schedule.
type Event struct {
	Index       int
	Instruction isa.Instruction
	StartNS     float64
	FinishNS    float64
}

// Schedule computes the parallel execution timeline (see MeasureParallel)
// and returns the per-instruction events alongside the cost.
func Schedule(p isa.Program, m *arraymodel.CostModel) ([]Event, Cost, error) {
	serial, err := Measure(p, m)
	if err != nil {
		return nil, Cost{}, err
	}
	space := p.ResourceSpace()

	arrayFree := make([]float64, space.Arrays)
	busFree := 0.0
	// Hazard state lives in flat arrays indexed by dense resource ID; the
	// zero value means "never touched", matching the map defaults the model
	// used before.
	lastWriter := make([]float64, space.Size())  // finish time of last writer
	lastReaders := make([]float64, space.Size()) // latest finish among readers
	var readBuf, writeBuf []int32

	events := make([]Event, 0, len(p))
	makespan := 0.0
	for i, in := range p {
		lat := instrLatency(in, m)
		reads, writes := in.AppendAccessIDs(space, readBuf[:0], writeBuf[:0])
		readBuf, writeBuf = reads, writes

		start := arrayFree[in.Array]
		if in.HasSrcArray {
			if t := arrayFree[in.SrcArray]; t > start {
				start = t
			}
		}
		usesBus := in.IsHostWrite() || in.HasSrcArray
		if usesBus && busFree > start {
			start = busFree
		}
		for _, r := range reads {
			if t := lastWriter[r]; t > start {
				start = t // RAW
			}
		}
		for _, r := range writes {
			if t := lastWriter[r]; t > start {
				start = t // WAW
			}
			if t := lastReaders[r]; t > start {
				start = t // WAR
			}
		}
		finish := start + lat
		arrayFree[in.Array] = finish
		if in.HasSrcArray {
			arrayFree[in.SrcArray] = finish
		}
		if usesBus {
			busFree = finish
		}
		for _, r := range reads {
			if finish > lastReaders[r] {
				lastReaders[r] = finish
			}
		}
		for _, r := range writes {
			lastWriter[r] = finish
		}
		if finish > makespan {
			makespan = finish
		}
		events = append(events, Event{Index: i, Instruction: in, StartNS: start, FinishNS: finish})
	}
	cost := serial
	cost.LatencyNS = makespan
	return events, cost, nil
}

// WriteTimelineCSV renders the schedule as CSV (index, array, kind, start,
// finish, instruction) for external visualization.
func WriteTimelineCSV(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "index,array,kind,start_ns,finish_ns,instruction\n"); err != nil {
		return err
	}
	for _, e := range events {
		line := fmt.Sprintf("%d,%d,%s,%.3f,%.3f,%q\n",
			e.Index, e.Instruction.Array, e.Instruction.Kind, e.StartNS, e.FinishNS, e.Instruction.String())
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

func instrLatency(in isa.Instruction, m *arraymodel.CostModel) float64 {
	switch in.Kind {
	case isa.KindRead:
		return m.ReadNS(len(in.Rows))
	case isa.KindWrite:
		switch {
		case in.IsHostWrite():
			return m.HostWriteNS()
		case in.HasSrcArray:
			return m.WriteNS() + interArrayBusNS
		default:
			return m.WriteNS()
		}
	case isa.KindShift:
		return m.ShiftNS(in.ShiftBy)
	case isa.KindNot:
		return m.NotNS()
	}
	panic(fmt.Sprintf("sim: latency of invalid instruction %v", in.Kind))
}
