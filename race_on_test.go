//go:build race

package sherlock

const raceEnabled = true
