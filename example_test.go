package sherlock_test

import (
	"fmt"
	"log"

	"sherlock"
)

// The full flow: compile a C kernel, run it on the array simulator, and
// inspect cost and reliability.
func Example() {
	src := `void k(word a, word b, word *out) { *out = a & ~b; }`
	compiled, err := sherlock.CompileC(src, sherlock.Options{
		Tech:      sherlock.ReRAM,
		ArraySize: 128,
		Mapper:    sherlock.MapperOptimized,
	})
	if err != nil {
		log.Fatal(err)
	}
	outs, err := compiled.Run(map[string]bool{"a": true, "b": false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("a & ~b =", outs["out"])
	// Output: a & ~b = true
}

// Kernels can be built programmatically with the Builder front-end, which
// folds constants and shares common subexpressions.
func ExampleBuilder() {
	b := sherlock.NewBuilder()
	x, y := b.Input("x"), b.Input("y")
	majority3 := b.Or(b.And(x, y), b.And(b.Xor(x, y), b.Input("z")))
	b.Output("maj", majority3)

	compiled, err := sherlock.CompileGraph(b.Graph(), sherlock.Options{ArraySize: 128})
	if err != nil {
		log.Fatal(err)
	}
	outs, err := compiled.Run(map[string]bool{"x": true, "y": false, "z": true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("majority(1,0,1) =", outs["maj"])
	// Output: majority(1,0,1) = true
}

// MultiRowActivation fuses same-type chains into multi-operand scouting
// reads, trading sense margin for fewer operations (Sec. 3.3.3).
func ExampleOptions_multiRowActivation() {
	b := sherlock.NewBuilder()
	b.DisableCSE = true
	acc := b.Input("v0")
	for i := 1; i < 4; i++ {
		acc = b.And(acc, b.Input(fmt.Sprintf("v%d", i)))
	}
	b.Output("all", acc)

	plain, _ := sherlock.CompileGraph(b.Graph(), sherlock.Options{ArraySize: 128})
	fused, _ := sherlock.CompileGraph(b.Graph(), sherlock.Options{
		ArraySize:          128,
		MultiRowActivation: true,
	})
	fmt.Println("program shrinks:", len(fused.Program) < len(plain.Program))
	// Output: program shrinks: true
}

// The generated program uses the paper's instruction format and can be
// printed, stored, and re-parsed.
func ExampleCompiled_program() {
	compiled, err := sherlock.CompileC(
		`void k(word p, word q, word *r) { *r = p ^ q; }`,
		sherlock.Options{ArraySize: 64, Arrays: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(compiled.Program.String())
	// Output:
	// Write [0][0][0] <p>
	// Write [0][0][1] <q>
	// Read [0][0][0,1] [XOR]
	// Write [0][0][2]
}
