// Package sherlock is an end-to-end compilation and evaluation framework
// for bulk bitwise computation in NVM compute-in-memory (CIM) arrays,
// reproducing "SHERLOCK: Scheduling Efficient and Reliable Bulk Bitwise
// Operations in NVMs" (DAC 2024).
//
// The flow mirrors the paper's Fig. 1: a high-level kernel (a C subset or a
// programmatically built data-flow graph) is lowered to a DFG, mapped onto
// the columns of a scouting-logic CIM array by either the naive (Algorithm
// 1) or the optimized clustering mapper (Algorithm 2), and emitted as an
// instruction program in the paper's format. The compiled result can be
// executed bit-exactly on the built-in array simulator, costed under
// calibrated latency/energy models for ReRAM, STT-MRAM and PCM, and
// assessed for decision-failure reliability.
//
// Quick start:
//
//	src := `void k(word a, word b, word *out) { *out = a & ~b; }`
//	c, err := sherlock.CompileC(src, sherlock.Options{
//	    Tech:      sherlock.STTMRAM,
//	    ArraySize: 512,
//	    Mapper:    sherlock.MapperOptimized,
//	})
//	outs, err := c.Run(map[string]bool{"a": true, "b": false})
//	cost, err := c.Cost()
//	rel, err := c.Reliability()
package sherlock

import (
	"fmt"
	"sync"

	"sherlock/internal/arraymodel"
	"sherlock/internal/coopt"
	"sherlock/internal/cparser"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/mapping"
	"sherlock/internal/pool"
	"sherlock/internal/reliability"
	"sherlock/internal/sim"
	"sherlock/internal/verify"
)

// Re-exported core types. The internal packages hold the implementations;
// these aliases form the supported public surface.
type (
	// Graph is the bulk-bitwise data-flow graph.
	Graph = dfg.Graph
	// Builder constructs Graphs from expressions with folding and CSE.
	Builder = dfg.Builder
	// Val is a Builder value handle.
	Val = dfg.Val
	// Program is a CIM instruction sequence (paper Fig. 4 format).
	Program = isa.Program
	// Instruction is one CIM instruction.
	Instruction = isa.Instruction
	// Target describes the CIM fabric available to the mapper.
	Target = layout.Target
	// Place is a cell coordinate (array, column, row).
	Place = layout.Place
	// Technology identifies an NVM cell technology.
	Technology = device.Technology
	// DeviceParams is a technology's cell and sensing model.
	DeviceParams = device.Params
	// Cost is measured latency/energy of a program.
	Cost = sim.Cost
	// ReliabilityReport is the decision-failure assessment of a program.
	ReliabilityReport = reliability.Report
	// MappingStats summarizes what the mapper did.
	MappingStats = mapping.Stats
	// VerifyReport is the static verifier's result for a program.
	VerifyReport = verify.Report
	// VerifyFinding is one static-verifier diagnostic.
	VerifyFinding = verify.Finding
	// EquivalenceReport is the translation validator's per-output proof
	// record (see Compiled.VerifyEquivalence).
	EquivalenceReport = verify.EquivReport
)

// Supported technologies.
const (
	STTMRAM = device.STTMRAM
	ReRAM   = device.ReRAM
	PCM     = device.PCM
)

// NewBuilder returns a fresh DFG builder (the programmatic front-end).
func NewBuilder() *Builder { return dfg.NewBuilder() }

// ParamsFor returns the calibrated device model of a technology.
func ParamsFor(t Technology) DeviceParams { return device.ParamsFor(t) }

// MapperKind selects the mapping algorithm.
type MapperKind int

// The two mappers of the paper.
const (
	MapperNaive     MapperKind = iota // Algorithm 1: column-major packing
	MapperOptimized                   // Algorithm 2: clustering + instruction merging
)

func (m MapperKind) String() string {
	switch m {
	case MapperNaive:
		return "naive"
	case MapperOptimized:
		return "optimized"
	}
	return fmt.Sprintf("MapperKind(%d)", int(m))
}

// Options configures compilation.
type Options struct {
	// Tech selects the NVM technology (default STTMRAM).
	Tech Technology
	// ArraySize is the squared array dimension n (default 512); the cost
	// model uses Table 1's n x n geometry with data width 4n.
	ArraySize int
	// Arrays is how many arrays the mapper may spread across (default 4).
	Arrays int
	// Mapper selects Algorithm 1 or 2 (default MapperOptimized).
	Mapper MapperKind

	// MultiRowActivation applies the node-substitution transform
	// (Sec. 3.3.3), fusing same-type chains into multi-operand ops up to
	// the technology's row-activation limit.
	MultiRowActivation bool
	// MRAFraction is the fraction of fusion opportunities taken when
	// MultiRowActivation is set (default 1).
	MRAFraction float64
	// NANDLowering rewrites XOR/OR into NAND/NOT form — the reliable
	// configuration for STT-MRAM (Fig. 6b).
	NANDLowering bool
	// RecycleRows lets the mapper reuse rows of dead intermediates,
	// stretching the limited array capacity (an extension beyond the
	// paper's mappers; see DESIGN.md).
	RecycleRows bool
	// WearLeveling spreads recycled-row reuse across the column (FIFO
	// rotation after fresh rows), trading locality for endurance.
	WearLeveling bool

	// VerifyEmitted runs the static program verifier (internal/verify) on
	// the emitted instruction stream before returning from compilation — a
	// debug gate proving the mapper's output is def-before-use sound,
	// in-bounds, and free of dead stores or shadowed writes without
	// executing a single lane. Compilation fails if any finding surfaces.
	VerifyEmitted bool

	// VerifyEquivalence runs the translation validator after mapping: the
	// emitted instruction stream is symbolically executed into an AIG and
	// proven equivalent to the SOURCE kernel (pre-MRA, pre-NAND-lowering,
	// pre-resynthesis), so every transform in the pipeline is covered by
	// the proof. Compilation fails if any output is refuted or cannot be
	// proven within budget. See Compiled.VerifyEquivalence.
	VerifyEquivalence bool

	// Resynthesize turns on synthesis↔scheduling co-optimization
	// (internal/coopt): the kernel is lifted into an AIG, a portfolio of
	// resynthesis passes generates candidate nets, each candidate is mapped
	// through the configured mapper and priced on the real cost models, and
	// the best verified, equivalence-fuzzed mapping wins. The baseline
	// compile is always the floor — a run can only match or improve it.
	Resynthesize bool
	// ResynthIterations bounds the candidate-generation rounds when
	// Resynthesize is set (default 4).
	ResynthIterations int
}

func (o Options) withDefaults() Options {
	if o.ArraySize == 0 {
		o.ArraySize = 512
	}
	if o.Arrays == 0 {
		o.Arrays = 4
	}
	if o.MultiRowActivation && o.MRAFraction == 0 {
		o.MRAFraction = 1
	}
	if o.Resynthesize && o.ResynthIterations == 0 {
		o.ResynthIterations = 4
	}
	return o
}

// Normalized returns the options with every defaulted field resolved to
// its concrete value — the canonical form: two Options values that compile
// identically normalize identically, which is what content-addressed
// caches (internal/serve) key on.
func (o Options) Normalized() Options { return o.withDefaults() }

// execBlockWords is the lane-block width of the pooled batch executors:
// sim.DefaultBlockWords words = 256 input vectors per decoded program pass.
const execBlockWords = sim.DefaultBlockWords

// ResynthStats reports what the co-optimization loop did: baseline and
// best scores, AIG sizes, candidate counts and per-iteration outcomes.
type ResynthStats = coopt.Stats

// Compiled is a mapped kernel ready to execute, cost and assess.
type Compiled struct {
	Graph   *Graph
	Program Program
	Stats   MappingStats

	// Resynth holds the co-optimization report when Options.Resynthesize
	// was set; nil otherwise.
	Resynth *ResynthStats

	opts   Options
	result *mapping.Result
	source *Graph // the pre-transform kernel, equivalence ground truth

	bindOnce  sync.Once
	bindNames []string // host-write bindings, in first-use order

	outOnce   sync.Once
	outNames  []string // kernel outputs, in Graph.Outputs() order
	outPlaces []Place  // readout cell of each output, same order
	outErr    error

	// The program decodes into a micro-op executor once per Compiled;
	// machines (per-worker mutable state over the shared Exec) pool across
	// Run/RunBatch calls.
	execOnce sync.Once
	execVal  *sim.Exec
	execErr  error
	machines sync.Pool
}

// CompileC parses a C-subset kernel (see internal/cparser for the accepted
// dialect) and compiles it.
func CompileC(src string, opts Options) (*Compiled, error) {
	parsed, err := cparser.Compile(src)
	if err != nil {
		return nil, err
	}
	return CompileGraph(parsed.Graph, opts)
}

// CompileGraph maps an already-built DFG.
func CompileGraph(g *Graph, opts Options) (*Compiled, error) {
	opts = opts.withDefaults()
	params := device.ParamsFor(opts.Tech)

	// mapGraph is the full lower half of the pipeline — graph transforms
	// (MRA fusion, NAND lowering) plus the configured mapper — so every
	// co-optimization candidate is priced on exactly the program it would
	// ship as.
	mapGraph := func(g *dfg.Graph) (*mapping.Result, error) {
		if opts.MultiRowActivation {
			g, _ = dfg.SubstituteNodes(g, dfg.SubstituteOptions{
				MaxOperands: params.MaxRows,
				Fraction:    opts.MRAFraction,
				Seed:        1,
			})
		}
		if opts.NANDLowering {
			g, _ = dfg.LowerToNAND(g)
		}
		mopts := mapping.Options{
			Target: Target{
				Arrays: opts.Arrays,
				Rows:   opts.ArraySize,
				Cols:   opts.ArraySize,
			},
			RecycleRows:  opts.RecycleRows,
			WearLeveling: opts.WearLeveling,
		}
		if opts.Mapper == MapperNaive {
			return mapping.Naive(g, mopts)
		}
		return mapping.Optimized(g, mopts)
	}

	var res *mapping.Result
	var rstats *ResynthStats
	if opts.Resynthesize {
		model := arraymodel.New(arraymodel.DefaultConfig(opts.Tech, opts.ArraySize))
		r, err := coopt.Optimize(g, coopt.Config{
			Iterations: opts.ResynthIterations,
			MaxRows:    params.MaxRows,
			Evaluate:   mapGraph,
			Score: func(m *mapping.Result) (coopt.Score, error) {
				return coopt.ScoreMapped(m, model, params)
			},
		})
		if err != nil {
			return nil, err
		}
		res = r.Mapped
		rstats = &r.Stats
	} else {
		var err error
		if res, err = mapGraph(g); err != nil {
			return nil, err
		}
	}
	// res.Graph is the graph the mapper actually placed (post-transform,
	// post-resynthesis); output NodeIDs must resolve against it.
	c := &Compiled{
		Graph:   res.Graph,
		Program: res.Program,
		Stats:   res.Stats,
		Resynth: rstats,
		opts:    opts,
		result:  res,
		source:  g,
	}
	if opts.VerifyEmitted {
		if rep := c.Verify(); len(rep.Findings) != 0 {
			return nil, fmt.Errorf("sherlock: emitted program failed static verification (%d findings, first: %v)",
				len(rep.Findings), rep.Findings[0])
		}
	}
	if opts.VerifyEquivalence {
		rep, err := c.VerifyEquivalence()
		if err != nil {
			return nil, err
		}
		if err := rep.Err(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Verify statically analyzes the compiled program against its fabric: the
// full strict-mode property set (def-before-use, bounds, merge legality)
// plus liveness diagnostics the interpreter cannot give (dead stores,
// write-after-write shadows, unused inputs, leftover row-buffer values).
// A correct mapper produces zero findings; see internal/verify.
func (c *Compiled) Verify() *VerifyReport {
	return verify.ProgramOpts(c.Program, c.result.Layout.Target(), verify.Options{
		MaxRows: device.ParamsFor(c.opts.Tech).MaxRows,
	})
}

// VerifyEquivalence statically proves the emitted program computes the
// source kernel: the instruction stream is abstract-interpreted over AIG
// literals (internal/verify) and each readout is discharged against the
// kernel's lifted cone — structural hashing first, then random
// cosimulation and exhaustive checking on small cones. The ground truth is
// the graph handed to CompileGraph, before MRA fusion, NAND lowering, or
// resynthesis, so the proof covers every transform in the pipeline. The
// returned report carries a per-output verdict; its Err method surfaces
// the first refutation (with a concrete counterexample assignment) or
// unproven output.
func (c *Compiled) VerifyEquivalence() (*EquivalenceReport, error) {
	outNames, outPlaces, err := c.outputs()
	if err != nil {
		return nil, err
	}
	outs := make([]verify.OutputAt, len(outNames))
	for i := range outNames {
		outs[i] = verify.OutputAt{Name: outNames[i], Place: outPlaces[i]}
	}
	return verify.EquivalentOpts(c.Program, c.result.Layout.Target(), c.source, outs, verify.EquivOptions{})
}

// Cost measures the program under the compiled technology and array size,
// with the conservative one-instruction-at-a-time timing model.
func (c *Compiled) Cost() (Cost, error) {
	cm := arraymodel.New(arraymodel.DefaultConfig(c.opts.Tech, c.opts.ArraySize))
	return sim.Measure(c.Program, cm)
}

// CostParallel measures with the multi-array timing model: instructions on
// different arrays overlap when their data dependences allow, exposing the
// subarray parallelism of the target system.
func (c *Compiled) CostParallel() (Cost, error) {
	cm := arraymodel.New(arraymodel.DefaultConfig(c.opts.Tech, c.opts.ArraySize))
	return sim.MeasureParallel(c.Program, cm)
}

// Reliability assesses the application failure probability P_app.
func (c *Compiled) Reliability() (ReliabilityReport, error) {
	return reliability.Assess(c.Program, device.ParamsFor(c.opts.Tech))
}

// Wear reports the per-cell write pressure of one execution (endurance).
func (c *Compiled) Wear() (reliability.WearReport, error) {
	return reliability.AssessWear(c.Program)
}

// Timeline returns the per-instruction schedule under the multi-array
// timing model, exportable with sim.WriteTimelineCSV.
func (c *Compiled) Timeline() ([]sim.Event, Cost, error) {
	cm := arraymodel.New(arraymodel.DefaultConfig(c.opts.Tech, c.opts.ArraySize))
	return sim.Schedule(c.Program, cm)
}

// Run executes the program bit-exactly on the array simulator with the
// given input assignment and reads back the kernel outputs by name.
func (c *Compiled) Run(inputs map[string]bool) (map[string]bool, error) {
	outs, _, err := c.run(inputs, false, 0)
	return outs, err
}

// RunWithFaults executes with fault injection enabled: every sense decision
// flips with its decision-failure probability. It additionally returns how
// many faults were injected.
func (c *Compiled) RunWithFaults(inputs map[string]bool, seed int64) (map[string]bool, int, error) {
	return c.run(inputs, true, seed)
}

// RunBatch executes the program once per input assignment, word-parallel:
// the program is pre-decoded into a micro-op stream once per Compiled
// (sim.Predecode), and up to 256 input vectors (execBlockWords*64) pack
// into the bit-lanes of one executor pass. Lane blocks fan out over up to
// parallelism workers (0 selects runtime.GOMAXPROCS(0)) with per-worker
// pooled machine state. Outputs come back in input order, bit-for-bit
// identical to calling Run sequentially.
//
// Ownership: the returned maps are freshly allocated on every call and
// never retained or pooled by the library — the caller may keep, mutate,
// or discard them freely without affecting any later batch.
func (c *Compiled) RunBatch(batch []map[string]bool, parallelism int) ([]map[string]bool, error) {
	outs := make([]map[string]bool, len(batch))
	if err := c.RunBatchInto(batch, outs, parallelism); err != nil {
		return nil, err
	}
	return outs, nil
}

// RunBatchInto is RunBatch writing into caller-owned output maps: outs must
// have len(batch) entries; nil entries are allocated, non-nil maps are
// cleared and refilled. Long-running callers (the serving layer, load
// generators) reuse the same outs across calls, eliminating the per-lane
// map allocation that dominates RunBatch's churn.
//
// Ownership: outs and its maps belong to the caller. The library writes
// them only during the call — each non-nil map is cleared (stale keys
// from any caller mutation included) and refilled with exactly the
// program's outputs; no reference is held afterwards. Mutating the maps
// between calls therefore cannot corrupt a later batch. The one sharp
// edge: aliasing the same map into several outs slots leaves it holding
// only the last-filled lane's outputs.
func (c *Compiled) RunBatchInto(batch []map[string]bool, outs []map[string]bool, parallelism int) error {
	if len(outs) != len(batch) {
		return fmt.Errorf("sherlock: RunBatchInto: %d output slots for %d inputs", len(outs), len(batch))
	}
	ex, err := c.exec()
	if err != nil {
		return err
	}
	blockLanes := execBlockWords * sim.WordLanes
	groups := (len(batch) + blockLanes - 1) / blockLanes
	return pool.Run(parallelism, groups, func(g int) error {
		start := g * blockLanes
		end := min(start+blockLanes, len(batch))
		return c.runExecGroup(ex, batch, outs, start, end)
	})
}

// RunBatchWords is the packed-bits fast path: lanes input vectors arrive
// pre-packed one-per-bit in lane words instead of one map[string]bool per
// vector, bypassing the name resolution and per-vector decode of RunBatch
// entirely. The layout is slot-major with stride W = ceil(lanes/64) words:
// bit l of word in[s*W + w] is vector (64w+l)'s value for input slot s,
// where slot order is InputNames(). Outputs return output-major with the
// same stride: out[o*W + w] carries output o (OutputNames() order) of
// vectors 64w..64w+63, dead lanes masked to zero. A non-nil out with
// sufficient capacity is reused, making steady-state calls allocation-free.
// Lane blocks fan out over up to parallelism workers, as in RunBatch.
func (c *Compiled) RunBatchWords(in []uint64, lanes int, out []uint64, parallelism int) ([]uint64, error) {
	if lanes <= 0 {
		return nil, fmt.Errorf("sherlock: RunBatchWords needs at least one lane, got %d", lanes)
	}
	ex, err := c.exec()
	if err != nil {
		return nil, err
	}
	names := c.inputNames()
	W := laneWords(lanes)
	if len(in) < len(names)*W {
		return nil, fmt.Errorf("sherlock: input block has %d words, need %d (%d inputs x %d lane words)",
			len(in), len(names)*W, len(names), W)
	}
	outNames, _, err := c.outputs()
	if err != nil {
		return nil, err
	}
	need := len(outNames) * W
	if cap(out) < need {
		out = make([]uint64, need)
	} else {
		out = out[:need]
	}
	blockLanes := execBlockWords * sim.WordLanes
	groups := (lanes + blockLanes - 1) / blockLanes
	if groups == 1 {
		// The common serving case (one coalesced 256-lane pass): skip the
		// worker-pool closure so the steady state allocates nothing.
		err = c.runWordsGroup(ex, in, out, W, 0, lanes)
	} else {
		err = pool.Run(parallelism, groups, func(g int) error {
			start := g * blockLanes
			end := min(start+blockLanes, lanes)
			return c.runWordsGroup(ex, in, out, W, start, end)
		})
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// laneWords returns W, the per-slot word stride of a packed lane block.
func laneWords(lanes int) int { return (lanes + sim.WordLanes - 1) / sim.WordLanes }

// InputNames returns the host-input names the compiled program consumes, in
// slot order: slot s of a RunBatchWords input block carries the s-th name.
func (c *Compiled) InputNames() []string {
	return append([]string(nil), c.inputNames()...)
}

// OutputNames returns the kernel's output names in readout order: row o of
// a RunBatchWords output block carries the o-th name.
func (c *Compiled) OutputNames() []string {
	outs := c.Graph.Outputs()
	names := make([]string, len(outs))
	for i, o := range outs {
		names[i] = c.Graph.OutputName(o)
	}
	return names
}

// exec returns the pre-decoded executor, built once per Compiled.
func (c *Compiled) exec() (*sim.Exec, error) {
	c.execOnce.Do(func() {
		c.execVal, c.execErr = sim.Predecode(c.Program, c.result.Layout.Target())
	})
	return c.execVal, c.execErr
}

// getMachine borrows a pooled lane-block machine for ex (all of a
// Compiled's machines share its one Exec). Return it with c.machines.Put.
func (c *Compiled) getMachine(ex *sim.Exec) *sim.ExecMachine {
	if v := c.machines.Get(); v != nil {
		return v.(*sim.ExecMachine)
	}
	return ex.NewMachine(execBlockWords)
}

// inputNames returns the host-write bindings the program consumes, computed
// once per Compiled. The first-use order is exactly sim.Predecode's slot
// order, so index i here is input slot i of the executor.
func (c *Compiled) inputNames() []string {
	c.bindOnce.Do(func() {
		c.bindNames = c.Program.Bindings()
	})
	return c.bindNames
}

// outputs resolves the kernel outputs' names and readout cells once per
// Compiled; every batch group previously redid the layout lookups.
func (c *Compiled) outputs() ([]string, []Place, error) {
	c.outOnce.Do(func() {
		outs := c.Graph.Outputs()
		c.outNames = make([]string, len(outs))
		c.outPlaces = make([]Place, len(outs))
		for i, out := range outs {
			p, err := c.result.OutputPlace(out)
			if err != nil {
				c.outErr = err
				return
			}
			c.outNames[i] = c.Graph.OutputName(out)
			c.outPlaces[i] = p
		}
	})
	return c.outNames, c.outPlaces, c.outErr
}

// runExecGroup simulates batch[start:end) as the lanes of one lane-block
// executor pass and unpacks the readouts into outs, reusing any non-nil
// output maps in place.
func (c *Compiled) runExecGroup(ex *sim.Exec, batch, outs []map[string]bool, start, end int) error {
	lanes := end - start
	names := c.inputNames()
	outNames, outPlaces, err := c.outputs()
	if err != nil {
		return err
	}
	m := c.getMachine(ex)
	defer c.machines.Put(m)
	m.Reset(lanes)
	in := m.InputBlock()
	B := m.BlockWords()
	for l := 0; l < lanes; l++ {
		inp := batch[start+l]
		for slot, name := range names {
			v, ok := inp[name]
			if !ok {
				return fmt.Errorf("sherlock: batch input %d: unbound input %q", start+l, name)
			}
			if v {
				in[slot*B+l/sim.WordLanes] |= uint64(1) << uint(l%sim.WordLanes)
			}
		}
	}
	if err := m.Run(in); err != nil {
		return fmt.Errorf("sherlock: batch inputs [%d,%d): %w", start, end, err)
	}
	for l := 0; l < lanes; l++ {
		if om := outs[start+l]; om == nil {
			outs[start+l] = make(map[string]bool, len(outNames))
		} else {
			clear(om)
		}
	}
	activeWords := laneWords(lanes)
	for oi, p := range outPlaces {
		name := outNames[oi]
		for b := 0; b < activeWords; b++ {
			w, err := m.ReadOutWord(p, b)
			if err != nil {
				return err
			}
			lo := b * sim.WordLanes
			hi := min(lanes, lo+sim.WordLanes)
			for l := lo; l < hi; l++ {
				outs[start+l][name] = w>>uint(l-lo)&1 == 1
			}
		}
	}
	return nil
}

// runWordsGroup runs lanes [start,end) of a packed lane block through one
// executor pass: group words copy straight from the caller's slot-major
// block into the machine's input scratch and readout words copy straight
// back out — no maps, no per-vector work, no allocation.
func (c *Compiled) runWordsGroup(ex *sim.Exec, in, out []uint64, W, start, end int) error {
	lanes := end - start
	w0 := start / sim.WordLanes // group word offset (start is block-aligned)
	gw := laneWords(lanes)
	m := c.getMachine(ex)
	defer c.machines.Put(m)
	m.Reset(lanes)
	inBlock := m.InputBlock()
	B := m.BlockWords()
	for s := range c.inputNames() {
		copy(inBlock[s*B:s*B+gw], in[s*W+w0:s*W+w0+gw])
	}
	if err := m.Run(inBlock); err != nil {
		return fmt.Errorf("sherlock: batch lanes [%d,%d): %w", start, end, err)
	}
	_, outPlaces, err := c.outputs()
	if err != nil {
		return err
	}
	for oi, p := range outPlaces {
		for b := 0; b < gw; b++ {
			w, err := m.ReadOutWord(p, b)
			if err != nil {
				return err
			}
			out[oi*W+w0+b] = w
		}
	}
	return nil
}

func (c *Compiled) run(inputs map[string]bool, faults bool, seed int64) (map[string]bool, int, error) {
	if faults {
		// Fault injection stays on the scalar machine: its per-decision
		// Bernoulli draws are a different (equally valid) sampling of the
		// same distribution than the executor's geometric-skip streams, and
		// existing seeds pin existing patterns.
		m := sim.NewMachine(c.result.Layout.Target())
		m.EnableFaultInjection(device.ParamsFor(c.opts.Tech), seed)
		if err := m.Run(c.Program, inputs); err != nil {
			return nil, 0, err
		}
		outs := make(map[string]bool, len(c.Graph.Outputs()))
		for _, out := range c.Graph.Outputs() {
			p, err := c.result.OutputPlace(out)
			if err != nil {
				return nil, 0, err
			}
			v, err := m.ReadOut(p)
			if err != nil {
				return nil, 0, err
			}
			outs[c.Graph.OutputName(out)] = v
		}
		return outs, m.FaultCount(), nil
	}
	ex, err := c.exec()
	if err != nil {
		return nil, 0, err
	}
	m := c.getMachine(ex)
	defer c.machines.Put(m)
	m.Reset(1)
	words := make(map[string]uint64, len(inputs))
	for k, v := range inputs { //sherlock:allow rangemap (map-to-map rekeying; order-insensitive)
		var w uint64
		if v {
			w = 1
		}
		words[k] = w
	}
	if err := m.RunMap(words); err != nil {
		return nil, 0, err
	}
	outNames, outPlaces, err := c.outputs()
	if err != nil {
		return nil, 0, err
	}
	outs := make(map[string]bool, len(outNames))
	for oi, p := range outPlaces {
		w, err := m.ReadOutWord(p, 0)
		if err != nil {
			return nil, 0, err
		}
		outs[outNames[oi]] = w&1 == 1
	}
	return outs, 0, nil
}

// Evaluate computes the kernel's reference semantics directly on the DFG
// (no mapping involved) — the golden model Run is verified against.
func (c *Compiled) Evaluate(inputs map[string]bool) (map[string]bool, error) {
	return dfg.EvaluateByName(c.Graph, inputs)
}
