//go:build !race

package sherlock

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under -race (the detector
// perturbs sync.Pool reuse).
const raceEnabled = false
