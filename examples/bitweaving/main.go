// Database column scan on CIM: runs the BitWeaving-V BETWEEN predicate
// (the paper's database workload) over a synthetic sales table, compares
// the naive and optimized mappings, and verifies every predicate result
// against a scalar scan.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sherlock"
	"sherlock/internal/workloads/bitweaving"
)

func main() {
	// A column of 16-bit price codes, scanned in segments of the CIM
	// kernel; predicate: BETWEEN 2000 AND 9000.
	cfg := bitweaving.Config{Bits: 16, Segments: 8}
	const c1, c2 = 2000, 9000

	g, err := bitweaving.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column-scan DFG: %d ops over %d segments of %d-bit codes\n",
		g.ComputeStats().Ops, cfg.Segments, cfg.Bits)

	// Compile with both mappers and compare.
	type variant struct {
		name string
		kind sherlock.MapperKind
	}
	compiled := map[string]*sherlock.Compiled{}
	for _, v := range []variant{{"naive", sherlock.MapperNaive}, {"optimized", sherlock.MapperOptimized}} {
		c, err := sherlock.CompileGraph(g, sherlock.Options{
			Tech:      sherlock.ReRAM,
			ArraySize: 256, // small array: the kernel spans several columns
			Mapper:    v.kind,
		})
		if err != nil {
			log.Fatal(err)
		}
		cost, err := c.Cost()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %5d instructions, %4d copies, %3d columns, latency %8.2f us\n",
			v.name, c.Stats.Instructions, c.Stats.Copies, c.Stats.ColumnsUsed, cost.LatencyUS())
		compiled[v.name] = c
	}

	// Scan a batch of rows through the optimized kernel and verify each
	// result against the scalar reference.
	rng := rand.New(rand.NewSource(2024))
	opt := compiled["optimized"]
	matches, rows := 0, 0
	for batch := 0; batch < 8; batch++ {
		values := make([]uint64, cfg.Segments)
		for i := range values {
			values[i] = uint64(rng.Intn(1 << cfg.Bits))
		}
		in, err := bitweaving.Assignments(cfg, values, c1, c2)
		if err != nil {
			log.Fatal(err)
		}
		outs, err := opt.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		for s, v := range values {
			want := bitweaving.Reference(v, c1, c2, cfg.Bits)
			got := outs[bitweaving.OutName(s)]
			if got != want {
				log.Fatalf("row %d (value %d): CIM said %v, reference %v", rows, v, got, want)
			}
			if got {
				matches++
			}
			rows++
		}
	}
	fmt.Printf("\nscanned %d rows on the CIM array: %d satisfy BETWEEN %d AND %d, all verified\n",
		rows, matches, c1, c2)
}
