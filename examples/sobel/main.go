// Image processing on CIM: bit-sliced Sobel edge detection (the paper's
// image workload). A synthetic image is processed tile by tile through the
// compiled CIM kernel and the resulting edge map is rendered as ASCII art,
// verified against the scalar Sobel reference.
package main

import (
	"fmt"
	"log"
	"math"

	"sherlock"
	"sherlock/internal/workloads/sobel"
)

const (
	imgW, imgH = 26, 14
	threshold  = 200
)

// synthImage draws a bright disc on a dark gradient background.
func synthImage() [][]int {
	img := make([][]int, imgH)
	for y := range img {
		img[y] = make([]int, imgW)
		for x := range img[y] {
			img[y][x] = 20 + x*2
			dx, dy := float64(x-imgW/2), float64(y-imgH/2)*2
			if math.Hypot(dx, dy) < 6 {
				img[y][x] = 230
			}
		}
	}
	return img
}

func main() {
	cfg := sobel.Config{TileW: 4, TileH: 4, PixelBits: 8, Threshold: threshold}
	g, err := sobel.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("bit-sliced Sobel tile kernel: %d gates, critical path %d\n", st.Ops, st.CriticalPath)

	compiled, err := sherlock.CompileGraph(g, sherlock.Options{
		Tech:               sherlock.STTMRAM,
		ArraySize:          512,
		Mapper:             sherlock.MapperOptimized,
		MultiRowActivation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cost, err := compiled.Cost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped: %d instructions over %d columns, %.2f us per tile pass\n\n",
		compiled.Stats.Instructions, compiled.Stats.ColumnsUsed, cost.LatencyUS())

	img := synthImage()
	edges := make([][]bool, imgH)
	for y := range edges {
		edges[y] = make([]bool, imgW)
	}

	// Process the image in TileW x TileH output tiles.
	for ty := 0; ty+cfg.TileH+2 <= imgH; ty += cfg.TileH {
		for tx := 0; tx+cfg.TileW+2 <= imgW; tx += cfg.TileW {
			patch := make([][]int, cfg.TileH+2)
			for y := range patch {
				patch[y] = img[ty+y][tx : tx+cfg.TileW+2]
			}
			in, err := sobel.Assignments(cfg, patch)
			if err != nil {
				log.Fatal(err)
			}
			outs, err := compiled.Run(in)
			if err != nil {
				log.Fatal(err)
			}
			for oy := 0; oy < cfg.TileH; oy++ {
				for ox := 0; ox < cfg.TileW; ox++ {
					got := outs[sobel.EdgeName(ox, oy)]
					if want := sobel.Reference(cfg, patch, ox, oy); got != want {
						log.Fatalf("tile (%d,%d) pixel (%d,%d): CIM %v != reference %v",
							tx, ty, ox, oy, got, want)
					}
					edges[ty+oy+1][tx+ox+1] = got
				}
			}
		}
	}

	fmt.Println("edge map (CIM-computed, reference-verified):")
	for y := 0; y < imgH; y++ {
		for x := 0; x < imgW; x++ {
			if edges[y][x] {
				fmt.Print("#")
			} else {
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
}
