// Encryption on CIM: bit-sliced AES-128 (the paper's cryptography
// workload). The full 10-round gate network is compiled to the array,
// executed on the simulator, and the ciphertext is verified against the
// standard library's crypto/aes. The example also shows the reliability
// angle: the same program assessed on ReRAM vs STT-MRAM.
package main

import (
	stdaes "crypto/aes"
	"fmt"
	"log"

	"sherlock"
	"sherlock/internal/workloads/aes"
)

func main() {
	cfg := aes.DefaultConfig() // full AES-128, tower-field S-box
	g, err := aes.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("bit-sliced AES-128: %d gates (%d-gate tower-field S-box), critical path %d\n",
		st.Ops, aes.TowerSBoxGateCount(), st.CriticalPath)

	compiled, err := sherlock.CompileGraph(g, sherlock.Options{
		Tech:               sherlock.STTMRAM,
		ArraySize:          1024,
		Mapper:             sherlock.MapperOptimized,
		MultiRowActivation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cost, err := compiled.Cost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped onto 1024x1024 STT-MRAM: %d instructions (%d merged away), %d columns\n",
		compiled.Stats.Instructions, compiled.Stats.MergedAway, compiled.Stats.ColumnsUsed)
	fmt.Printf("one block-parallel pass: %.1f us, %.2f nJ per lane (4096 blocks in flight)\n\n",
		cost.LatencyUS(), cost.EnergyPJ/1e3)

	// Encrypt the FIPS-197 vector on the array.
	pt := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	in, err := aes.Assignments(cfg, pt, key)
	if err != nil {
		log.Fatal(err)
	}
	outs, err := compiled.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	ct, err := aes.CiphertextFrom(outs)
	if err != nil {
		log.Fatal(err)
	}

	block, err := stdaes.NewCipher(key[:])
	if err != nil {
		log.Fatal(err)
	}
	var want [16]byte
	block.Encrypt(want[:], pt[:])

	fmt.Printf("plaintext:   %x\n", pt)
	fmt.Printf("CIM output:  %x\n", ct)
	fmt.Printf("crypto/aes:  %x\n", want)
	if ct != want {
		log.Fatal("MISMATCH against crypto/aes")
	}
	fmt.Println("bit-exact match against crypto/aes")

	// Reliability across technologies for the same kernel. A whole AES
	// pass makes tens of thousands of sense decisions, so configuration
	// choices matter enormously: wide XOR activations are fatal, the
	// NAND-lowered 2-row schedule is the defensible point.
	fmt.Println("\ndecision-failure risk of one full encryption pass:")
	configs := []struct {
		label string
		opts  sherlock.Options
	}{
		{"ReRAM, fused XORs", sherlock.Options{Tech: sherlock.ReRAM, MultiRowActivation: true}},
		{"ReRAM, 2-row only", sherlock.Options{Tech: sherlock.ReRAM}},
		{"STT-MRAM, native XOR", sherlock.Options{Tech: sherlock.STTMRAM}},
		{"STT-MRAM, NAND-lowered", sherlock.Options{Tech: sherlock.STTMRAM, NANDLowering: true}},
	}
	for _, c := range configs {
		c.opts.ArraySize = 1024
		c.opts.Mapper = sherlock.MapperOptimized
		c2, err := sherlock.CompileGraph(g, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		rel, err := c2.Reliability()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s P_app = %.3e over %d sense decisions (worst class: %v over %d rows)\n",
			c.label, rel.PApp, rel.SenseDecisions, rel.WorstClass.Class.Op, rel.WorstClass.Class.Rows)
	}
}
