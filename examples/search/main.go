// Web-search document filtering on CIM: a BitFunnel-style bitmap-index
// query batch (the search use case from the paper's introduction). A
// synthetic corpus is indexed into per-term signature rows; a batch of
// boolean queries runs in one pass over the CIM array, with the term
// bitmaps shared across queries. Every match decision is verified against
// a direct evaluation of the index.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sherlock"
	"sherlock/internal/workloads/bitmap"
)

var vocabulary = []string{
	"memristor", "crossbar", "sense", "margin", "bitwise", "scan",
	"database", "index", "cipher", "gradient", "kernel", "schedule",
	"latency", "energy", "failure", "row", "column", "buffer",
	"activation", "reliability", "mapping", "cluster", "merge", "array",
}

func main() {
	cfg := bitmap.Config{
		Terms: len(vocabulary), RowsPerTerm: 3,
		Queries: 8, TermsPerQuery: 3, ExcludedPerQuery: 1, Seed: 2024,
	}
	g, err := bitmap.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("query batch DFG: %d ops for %d queries over %d shared term bitmaps\n",
		st.Ops, cfg.Queries, cfg.Terms)

	compiled, err := sherlock.CompileGraph(g, sherlock.Options{
		Tech:      sherlock.ReRAM,
		ArraySize: 128,
		Mapper:    sherlock.MapperOptimized,
	})
	if err != nil {
		log.Fatal(err)
	}
	cost, err := compiled.Cost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped: %d instructions, %.0f ns per document batch "+
		"(one lane = one document; %d documents in flight)\n\n",
		compiled.Stats.Instructions, cost.LatencyNS, 4*128)

	// One simulated document: set each term's signature rows with a
	// term-dependent density (a present term sets at least one row).
	rng := rand.New(rand.NewSource(2))
	present := map[int]bool{}
	rows := make([][]bool, cfg.Terms)
	for t := range rows {
		rows[t] = make([]bool, cfg.RowsPerTerm)
		if rng.Float64() < 0.55 { // the document contains this term
			present[t] = true
			rows[t][rng.Intn(cfg.RowsPerTerm)] = true
			for r := range rows[t] {
				if rng.Float64() < 0.3 {
					rows[t][r] = true
				}
			}
		}
	}
	var have []string
	for t := range present {
		have = append(have, vocabulary[t])
	}
	fmt.Printf("document terms: %s\n\n", strings.Join(have, ", "))

	in, err := bitmap.Assignments(cfg, rows)
	if err != nil {
		log.Fatal(err)
	}
	outs, err := compiled.Run(in)
	if err != nil {
		log.Fatal(err)
	}

	plan := cfg.QueryPlan()
	for q, query := range plan {
		var parts []string
		for _, t := range query.Required {
			parts = append(parts, vocabulary[t])
		}
		for _, t := range query.Excluded {
			parts = append(parts, "-"+vocabulary[t])
		}
		got := outs[bitmap.MatchName(q)]
		want := bitmap.Reference(cfg, query, rows)
		if got != want {
			log.Fatalf("query %d: CIM %v != reference %v", q, got, want)
		}
		verdict := "     "
		if got {
			verdict = "MATCH"
		}
		fmt.Printf("  %s  %s\n", verdict, strings.Join(parts, " "))
	}
	fmt.Println("\nall query decisions verified against the index")
}
