// Quickstart: compile a small bulk-bitwise kernel from C, execute it
// bit-exactly on the CIM array simulator, and print cost and reliability —
// the whole Sherlock flow in one page.
package main

import (
	"fmt"
	"log"

	"sherlock"
)

const kernel = `
// Detect values inside a 2-bit window: hit = (x >= lo) & (x <= hi),
// expressed directly in bulk-bitwise logic over bit-sliced operands.
void window(word x1, word x0, word lo1, word lo0, word hi1, word hi0, word *hit) {
	word geLo = (x1 & ~lo1) | (~(x1 ^ lo1) & (x0 | ~lo0));
	word leHi = (hi1 & ~x1) | (~(hi1 ^ x1) & (hi0 | ~x0));
	*hit = geLo & leHi;
}`

func main() {
	// Compile for a 512x512 STT-MRAM array with the optimized mapper.
	compiled, err := sherlock.CompileC(kernel, sherlock.Options{
		Tech:      sherlock.STTMRAM,
		ArraySize: 512,
		Mapper:    sherlock.MapperOptimized,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Generated CIM program:")
	fmt.Print(compiled.Program.String())

	// Execute on the simulator: is x=2 within [lo=1, hi=3]?
	inputs := map[string]bool{
		"x1": true, "x0": false, // x  = 2
		"lo1": false, "lo0": true, // lo = 1
		"hi1": true, "hi0": true, // hi = 3
	}
	outs, err := compiled.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwindow(x=2, lo=1, hi=3) = %v\n", outs["hit"])

	// The simulator result always matches the DFG's reference semantics.
	ref, err := compiled.Evaluate(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference agrees: %v\n", ref["hit"] == outs["hit"])

	// What does it cost on the device, and how reliable is it?
	cost, err := compiled.Cost()
	if err != nil {
		log.Fatal(err)
	}
	rel, err := compiled.Reliability()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency: %.1f ns   energy: %.1f pJ/lane   P_app: %.2e (%d sense decisions)\n",
		cost.LatencyNS, cost.EnergyPJ, rel.PApp, rel.SenseDecisions)
}
