// Batch: compile a kernel once and fan many independent executions out
// over the worker pool with Compiled.RunBatch — the facade-level face of
// the parallel campaign engine. Inputs pack 64-per-word onto the SWAR
// lane simulator (one program pass covers 64 vectors), and lane groups
// fan out over the workers. Outputs come back in input order, identical
// to running each input sequentially.
//
// The second half switches to RunBatchWords, the packed-bits fast path:
// vectors arrive pre-packed one bit per lane (slot order InputNames()),
// skipping the per-vector maps entirely, and a reused output buffer makes
// steady-state calls allocation-free — the layout the serving layer's
// batch coalescer (internal/serve) merges concurrent callers into.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sherlock"
)

const kernel = `
// One bit-slice of a masked-popcount stage: select, combine, carry.
void stage(word v, word m, word cin, word *sum, word *cout) {
	word x = v & m;
	*sum = x ^ cin;
	*cout = x & cin;
}`

func main() {
	compiled, err := sherlock.CompileC(kernel, sherlock.Options{
		Tech:      sherlock.ReRAM,
		ArraySize: 128,
		Mapper:    sherlock.MapperOptimized,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 200 independent input vectors: four 64-wide lane groups (the last
	// one partial), up to GOMAXPROCS groups at a time (parallelism 0).
	rng := rand.New(rand.NewSource(42))
	batch := make([]map[string]bool, 200)
	for i := range batch {
		batch[i] = map[string]bool{
			"v": rng.Intn(2) == 1, "m": rng.Intn(2) == 1, "cin": rng.Intn(2) == 1,
		}
	}
	start := time.Now()
	outs, err := compiled.RunBatch(batch, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	fmt.Printf("simulated %d vectors in %v (%.0f vectors/sec)\n\n",
		len(batch), elapsed.Round(time.Microsecond),
		float64(len(batch))/elapsed.Seconds())

	// Check every vector against the golden DFG evaluation; print the
	// first 16.
	mismatches := 0
	fmt.Println(" #  v m cin | sum cout | golden")
	for i, in := range batch {
		golden, err := compiled.Evaluate(in)
		if err != nil {
			log.Fatal(err)
		}
		match := "ok"
		if outs[i]["sum"] != golden["sum"] || outs[i]["cout"] != golden["cout"] {
			match = "MISMATCH"
			mismatches++
		}
		if i < 16 {
			fmt.Printf("%2d  %d %d  %d  |  %d    %d   | %s\n",
				i, b2i(in["v"]), b2i(in["m"]), b2i(in["cin"]),
				b2i(outs[i]["sum"]), b2i(outs[i]["cout"]), match)
		}
	}
	fmt.Printf("... %d more vectors, %d mismatches\n", len(batch)-16, mismatches)

	// The same batch through the packed fast path: pack each input's 200
	// bits into lane words (stride W = ceil(200/64) = 4), run, and compare
	// against the map-based outputs bit for bit.
	names := compiled.InputNames()
	lanes := len(batch)
	W := (lanes + 63) / 64
	in := make([]uint64, len(names)*W)
	for l, vec := range batch {
		for s, name := range names {
			if vec[name] {
				in[s*W+l/64] |= uint64(1) << uint(l%64)
			}
		}
	}
	var out []uint64 // reused across calls: steady state allocates nothing
	start = time.Now()
	const reps = 50
	for rep := 0; rep < reps; rep++ {
		out, err = compiled.RunBatchWords(in, lanes, out, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed = time.Since(start) / reps
	fmt.Printf("\npacked path: %d vectors in %v (%.0f vectors/sec, buffer reused %dx)\n",
		lanes, elapsed, float64(lanes)/elapsed.Seconds(), reps)

	packedMismatches := 0
	for o, name := range compiled.OutputNames() {
		for l := 0; l < lanes; l++ {
			if out[o*W+l/64]>>uint(l%64)&1 == 1 != outs[l][name] {
				packedMismatches++
			}
		}
	}
	fmt.Printf("packed vs map outputs: %d mismatches\n", packedMismatches)
}
