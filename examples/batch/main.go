// Batch: compile a kernel once and fan many independent executions out
// over the worker pool with Compiled.RunBatch — the facade-level face of
// the parallel campaign engine. Outputs come back in input order,
// identical to running each input sequentially.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sherlock"
)

const kernel = `
// One bit-slice of a masked-popcount stage: select, combine, carry.
void stage(word v, word m, word cin, word *sum, word *cout) {
	word x = v & m;
	*sum = x ^ cin;
	*cout = x & cin;
}`

func main() {
	compiled, err := sherlock.CompileC(kernel, sherlock.Options{
		Tech:      sherlock.ReRAM,
		ArraySize: 128,
		Mapper:    sherlock.MapperOptimized,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 16 independent input vectors; each executes on its own simulator
	// instance, up to GOMAXPROCS at a time (parallelism 0).
	rng := rand.New(rand.NewSource(42))
	batch := make([]map[string]bool, 16)
	for i := range batch {
		batch[i] = map[string]bool{
			"v": rng.Intn(2) == 1, "m": rng.Intn(2) == 1, "cin": rng.Intn(2) == 1,
		}
	}
	outs, err := compiled.RunBatch(batch, 0)
	if err != nil {
		log.Fatal(err)
	}

	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	fmt.Println(" #  v m cin | sum cout | golden")
	for i, in := range batch {
		golden, err := compiled.Evaluate(in)
		if err != nil {
			log.Fatal(err)
		}
		match := "ok"
		if outs[i]["sum"] != golden["sum"] || outs[i]["cout"] != golden["cout"] {
			match = "MISMATCH"
		}
		fmt.Printf("%2d  %d %d  %d  |  %d    %d   | %s\n",
			i, b2i(in["v"]), b2i(in["m"]), b2i(in["cin"]),
			b2i(outs[i]["sum"]), b2i(outs[i]["cout"]), match)
	}
}
