// Command sherlock-lint statically verifies CIM instruction programs
// (Fig. 4 format) without executing them: def-before-use over the abstract
// definedness lattice, array/column/row bounds against the fabric geometry,
// merge and op-mux legality, plus liveness diagnostics (dead stores,
// write-after-write shadows, unused host inputs, leftover row-buffer
// values). See internal/verify for the property set.
//
// Usage:
//
//	sherlock-lint [-target 4x512x512] [-tech STT-MRAM] [-werror] prog.cim...
//	sherlock-lint -array-size 512 -arrays 4 prog.cim...
//	sherlock-lint -equiv -workload aes:rounds=2 -target 4x512x512 prog.cim...
//
// -array-size derives the fabric from the paper's Table 1 geometry
// (arraymodel.DefaultConfig) instead of spelling it out; -tech additionally
// bounds multi-row activations by the technology's limit.
//
// -equiv switches the tool into translation-validation mode: each program
// is symbolically executed into an AIG and statically proven equivalent to
// the kernel named by -workload. The readout contract comes from the
// program's `.outputs` manifest sidecar (prog.outputs next to prog.cim, as
// written by goldengen). On a refutation the failing output, a concrete
// input assignment, and the expected/actual bits are printed.
//
// The exit status is 0 for verifier-clean (or fully proven) programs, 1
// when any program carries an error, a refuted or unproven output (or,
// with -werror, a warning), 2 on usage or parse failures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/dfg"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/verify"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sherlock-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target    = fs.String("target", "4x512x512", "fabric as ARRAYSxROWSxCOLS")
		arraySize = fs.Int("array-size", 0, "derive the fabric from the Table 1 geometry of this array dimension (overrides -target rows/cols)")
		arrays    = fs.Int("arrays", 4, "array count for -array-size")
		tech      = fs.String("tech", "STT-MRAM", "technology whose row-activation limit bounds scouting reads")
		werror    = fs.Bool("werror", false, "exit non-zero on warnings too")
		quiet     = fs.Bool("quiet", false, "suppress per-file summary lines")
		equiv     = fs.Bool("equiv", false, "translation-validation mode: prove each program equivalent to the -workload kernel")
		workload  = fs.String("workload", "", "kernel spec for -equiv, e.g. aes:rounds=2, bitweaving:bits=16,segments=8, sobel:tilew=2,tileh=2,bits=8,threshold=128")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "sherlock-lint: no program files given")
		fs.Usage()
		return 2
	}
	tv, err := device.ParseTechnology(*tech)
	if err != nil {
		fmt.Fprintln(stderr, "sherlock-lint:", err)
		return 2
	}
	params := device.ParamsFor(tv)
	t, err := parseTarget(*target)
	if err != nil {
		fmt.Fprintln(stderr, "sherlock-lint:", err)
		return 2
	}
	if *arraySize > 0 {
		t = arraymodel.DefaultConfig(tv, *arraySize).Target(*arrays)
	}
	if *equiv {
		kernel, err := buildWorkload(*workload)
		if err != nil {
			fmt.Fprintln(stderr, "sherlock-lint:", err)
			return 2
		}
		return runEquiv(fs.Args(), t, kernel, *quiet, stdout, stderr)
	}

	failed := false
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "sherlock-lint:", err)
			return 2
		}
		prog, err := isa.ParseProgram(string(text))
		if err != nil {
			fmt.Fprintf(stderr, "sherlock-lint: %s: %v\n", path, err)
			return 2
		}
		rep := verify.ProgramOpts(prog, t, verify.Options{MaxRows: params.MaxRows})
		counts := map[verify.Severity]int{}
		for _, f := range rep.Findings {
			counts[f.Severity]++
			if f.Instr >= 0 {
				fmt.Fprintf(stdout, "%s: instr %d (%s): %v[%s]: %s\n",
					path, f.Instr, rep.Instruction(f), f.Severity, f.Code, f.Msg)
			} else {
				fmt.Fprintf(stdout, "%s: program: %v[%s]: %s\n", path, f.Severity, f.Code, f.Msg)
			}
		}
		if !*quiet {
			fmt.Fprintf(stdout, "%s: %d instructions, %d errors, %d warnings, %d notes\n",
				path, len(prog), counts[verify.SevError], counts[verify.SevWarning], counts[verify.SevInfo])
		}
		if counts[verify.SevError] > 0 || (*werror && counts[verify.SevWarning] > 0) {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runEquiv proves every program equivalent to kernel, reading each file's
// readout contract from its `.outputs` sidecar.
func runEquiv(paths []string, t layout.Target, kernel *dfg.Graph, quiet bool, stdout, stderr io.Writer) int {
	failed := false
	for _, path := range paths {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "sherlock-lint:", err)
			return 2
		}
		prog, err := isa.ParseProgram(string(text))
		if err != nil {
			fmt.Fprintf(stderr, "sherlock-lint: %s: %v\n", path, err)
			return 2
		}
		mpath := manifestPath(path)
		mtext, err := os.ReadFile(mpath)
		if err != nil {
			fmt.Fprintf(stderr, "sherlock-lint: %s: readout manifest: %v\n", path, err)
			return 2
		}
		outs, err := verify.ParseOutputs(string(mtext))
		if err != nil {
			fmt.Fprintf(stderr, "sherlock-lint: %s: %v\n", mpath, err)
			return 2
		}
		rep, err := verify.EquivalentOpts(prog, t, kernel, outs, verify.EquivOptions{})
		if err != nil {
			fmt.Fprintf(stdout, "%s: %v\n", path, err)
			failed = true
			continue
		}
		proven := 0
		for _, o := range rep.Outputs {
			switch {
			case o.Counter != nil:
				m := o.Counter
				fmt.Fprintf(stdout, "%s: output %q REFUTED (%s): program computes %d, kernel computes %d under %s\n",
					path, o.Name, o.Method, b2i(m.Got), b2i(m.Want), m.AssignmentString(16))
			case o.Method == "unproven":
				fmt.Fprintf(stdout, "%s: output %q UNPROVEN within budget\n", path, o.Name)
			default:
				proven++
			}
		}
		if !rep.AllProven() {
			failed = true
		}
		if !quiet {
			fmt.Fprintf(stdout, "%s: %d instructions, %d/%d outputs proven (%d AIG nodes)\n",
				path, len(prog), proven, len(rep.Outputs), rep.Nodes)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// manifestPath maps prog.cim (or prog.golden) to its readout sidecar
// prog.outputs.
func manifestPath(path string) string {
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		return path[:i] + ".outputs"
	}
	return path + ".outputs"
}

// buildWorkload constructs the reference kernel from a spec of the form
// name:key=value,... — the same workload generators the golden corpus and
// the paper's evaluation use.
func buildWorkload(spec string) (*dfg.Graph, error) {
	if spec == "" {
		return nil, fmt.Errorf("-equiv requires -workload (e.g. aes:rounds=2)")
	}
	name, rest, _ := strings.Cut(spec, ":")
	kv := map[string]int{}
	if rest != "" {
		for _, pair := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return nil, fmt.Errorf("workload %q: parameter %q not of form key=value", spec, pair)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("workload %q: parameter %q: %v", spec, pair, err)
			}
			kv[strings.ToLower(k)] = n
		}
	}
	get := func(key string, def int) int {
		if v, ok := kv[key]; ok {
			delete(kv, key)
			return v
		}
		return def
	}
	var (
		g   *dfg.Graph
		err error
	)
	switch name {
	case "aes":
		g, err = aes.Build(aes.Config{Rounds: get("rounds", 2)})
	case "bitweaving":
		g, err = bitweaving.Build(bitweaving.Config{Bits: get("bits", 16), Segments: get("segments", 8)})
	case "sobel":
		g, err = sobel.Build(sobel.Config{
			TileW:     get("tilew", 2),
			TileH:     get("tileh", 2),
			PixelBits: get("bits", 8),
			Threshold: uint64(get("threshold", 128)),
		})
	default:
		return nil, fmt.Errorf("unknown workload %q (want aes, bitweaving, or sobel)", name)
	}
	if err != nil {
		return nil, fmt.Errorf("workload %q: %v", spec, err)
	}
	for k := range kv { //sherlock:allow rangemap (error path; any leftover key aborts)
		return nil, fmt.Errorf("workload %q: unknown parameter %q", spec, k)
	}
	return g, nil
}

func parseTarget(s string) (layout.Target, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return layout.Target{}, fmt.Errorf("target %q not of form AxRxC", s)
	}
	var nums [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return layout.Target{}, fmt.Errorf("target %q: %v", s, err)
		}
		nums[i] = v
	}
	t := layout.Target{Arrays: nums[0], Rows: nums[1], Cols: nums[2]}
	return t, t.Validate()
}
