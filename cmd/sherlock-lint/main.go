// Command sherlock-lint statically verifies CIM instruction programs
// (Fig. 4 format) without executing them: def-before-use over the abstract
// definedness lattice, array/column/row bounds against the fabric geometry,
// merge and op-mux legality, plus liveness diagnostics (dead stores,
// write-after-write shadows, unused host inputs, leftover row-buffer
// values). See internal/verify for the property set.
//
// Usage:
//
//	sherlock-lint [-target 4x512x512] [-tech STT-MRAM] [-werror] prog.cim...
//	sherlock-lint -array-size 512 -arrays 4 prog.cim...
//
// -array-size derives the fabric from the paper's Table 1 geometry
// (arraymodel.DefaultConfig) instead of spelling it out; -tech additionally
// bounds multi-row activations by the technology's limit. The exit status
// is 0 for verifier-clean programs, 1 when any program carries an error
// (or, with -werror, a warning), 2 on usage or parse failures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sherlock/internal/arraymodel"
	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sherlock-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target    = fs.String("target", "4x512x512", "fabric as ARRAYSxROWSxCOLS")
		arraySize = fs.Int("array-size", 0, "derive the fabric from the Table 1 geometry of this array dimension (overrides -target rows/cols)")
		arrays    = fs.Int("arrays", 4, "array count for -array-size")
		tech      = fs.String("tech", "STT-MRAM", "technology whose row-activation limit bounds scouting reads")
		werror    = fs.Bool("werror", false, "exit non-zero on warnings too")
		quiet     = fs.Bool("quiet", false, "suppress per-file summary lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "sherlock-lint: no program files given")
		fs.Usage()
		return 2
	}
	tv, err := device.ParseTechnology(*tech)
	if err != nil {
		fmt.Fprintln(stderr, "sherlock-lint:", err)
		return 2
	}
	params := device.ParamsFor(tv)
	t, err := parseTarget(*target)
	if err != nil {
		fmt.Fprintln(stderr, "sherlock-lint:", err)
		return 2
	}
	if *arraySize > 0 {
		t = arraymodel.DefaultConfig(tv, *arraySize).Target(*arrays)
	}

	failed := false
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "sherlock-lint:", err)
			return 2
		}
		prog, err := isa.ParseProgram(string(text))
		if err != nil {
			fmt.Fprintf(stderr, "sherlock-lint: %s: %v\n", path, err)
			return 2
		}
		rep := verify.ProgramOpts(prog, t, verify.Options{MaxRows: params.MaxRows})
		counts := map[verify.Severity]int{}
		for _, f := range rep.Findings {
			counts[f.Severity]++
			if f.Instr >= 0 {
				fmt.Fprintf(stdout, "%s: instr %d (%s): %v[%s]: %s\n",
					path, f.Instr, rep.Instruction(f), f.Severity, f.Code, f.Msg)
			} else {
				fmt.Fprintf(stdout, "%s: program: %v[%s]: %s\n", path, f.Severity, f.Code, f.Msg)
			}
		}
		if !*quiet {
			fmt.Fprintf(stdout, "%s: %d instructions, %d errors, %d warnings, %d notes\n",
				path, len(prog), counts[verify.SevError], counts[verify.SevWarning], counts[verify.SevInfo])
		}
		if counts[verify.SevError] > 0 || (*werror && counts[verify.SevWarning] > 0) {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func parseTarget(s string) (layout.Target, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return layout.Target{}, fmt.Errorf("target %q not of form AxRxC", s)
	}
	var nums [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return layout.Target{}, fmt.Errorf("target %q: %v", s, err)
		}
		nums[i] = v
	}
	t := layout.Target{Arrays: nums[0], Rows: nums[1], Cols: nums[2]}
	return t, t.Validate()
}
