package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/logic"
	"sherlock/internal/mapping"
	"sherlock/internal/verify"
	"sherlock/internal/workloads/bitweaving"
)

// writeProg writes instruction text to a temp file so the test exercises the
// same parse path the CLI uses.
func writeProg(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.cim")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanProgram(t *testing.T) {
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [0][0][1]\n")
	var out, errb bytes.Buffer
	code := run([]string{"-target", "1x4x4", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want := path + ": 3 instructions, 0 errors, 0 warnings, 0 notes\n"
	if out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
}

func TestLintReportsErrorWithInstructionIndex(t *testing.T) {
	path := writeProg(t, "Read [0][0][0]\n") // reads an undefined cell
	var out, errb bytes.Buffer
	code := run([]string{"-target", "1x4x4", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, frag := range []string{
		path + ": instr 0 (Read [0][0][0]): error[undef-read]",
		"read of undefined cell [0][0][0]",
		"1 errors",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("stdout missing %q:\n%s", frag, got)
		}
	}
}

func TestLintWerrorPromotesWarnings(t *testing.T) {
	// Instruction 1 loads buffer bit [0][0]; instruction 2 overwrites it
	// before anything consumed it — a dead store, warning severity.
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nRead [0][0][0]\nWrite [0][0][1]\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-target", "1x4x4", path}, &out, &errb); code != 0 {
		t.Fatalf("without -werror: exit %d, stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "warning[dead-store]") {
		t.Fatalf("expected a dead-store warning, got:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-werror", "-target", "1x4x4", path}, &out, &errb); code != 1 {
		t.Fatalf("with -werror: exit %d, want 1", code)
	}
}

func TestLintUsageAndParseFailures(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-target", "nonsense", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("bad target: exit %d, want 2", code)
	}
	if code := run([]string{"-tech", "DRAM", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("unknown tech: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/prog.cim"}, &out, &errb); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
	bad := writeProg(t, "NOT A PROGRAM\n")
	if code := run([]string{bad}, &out, &errb); code != 2 {
		t.Fatalf("unparsable file: exit %d, want 2", code)
	}
}

func TestLintArraySizeGeometry(t *testing.T) {
	// -array-size 128 with one array is a 128x128 fabric for every Table 1
	// technology; a program touching row 200 must then be out of bounds.
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][200]\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-array-size", "128", "-arrays", "1", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "error[bounds]") {
		t.Fatalf("expected bounds error, got:\n%s", out.String())
	}
}

// writeEquivCase maps the given workload kernel and writes the program and
// its .outputs manifest side by side, as goldengen would.
func writeEquivCase(t *testing.T, mutate func(isa.Program) isa.Program) (progPath string) {
	t.Helper()
	g, err := bitweaving.Build(bitweaving.Config{Bits: 2, Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Optimized(g, mapping.Options{
		Target: layout.Target{Arrays: 1, Rows: 64, Cols: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := res.Program
	if mutate != nil {
		prog = mutate(append(isa.Program(nil), prog...))
	}
	outs := res.Graph.Outputs()
	specs := make([]verify.OutputAt, len(outs))
	for i, o := range outs {
		p, err := res.OutputPlace(o)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = verify.OutputAt{Name: res.Graph.OutputName(o), Place: p}
	}
	dir := t.TempDir()
	progPath = filepath.Join(dir, "prog.cim")
	if err := os.WriteFile(progPath, []byte(prog.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "prog.outputs"), []byte(verify.FormatOutputs(specs)), 0o644); err != nil {
		t.Fatal(err)
	}
	return progPath
}

func TestLintEquivProvesFaithfulProgram(t *testing.T) {
	path := writeEquivCase(t, nil)
	var out, errb bytes.Buffer
	code := run([]string{"-equiv", "-workload", "bitweaving:bits=2,segments=1", "-target", "1x64x64", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "outputs proven") {
		t.Fatalf("missing proof summary:\n%s", out.String())
	}
}

func TestLintEquivPrintsCounterexample(t *testing.T) {
	path := writeEquivCase(t, func(p isa.Program) isa.Program {
		for i := range p {
			if p[i].IsCIMRead() {
				ops := append([]logic.Op(nil), p[i].Ops...)
				if inv, ok := ops[0].Inverse(); ok {
					ops[0] = inv
					p[i].Ops = ops
					return p
				}
			}
		}
		t.Fatal("no CIM read to corrupt")
		return p
	})
	var out, errb bytes.Buffer
	code := run([]string{"-equiv", "-workload", "bitweaving:bits=2,segments=1", "-target", "1x64x64", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	got := out.String()
	for _, frag := range []string{"REFUTED", "program computes", "kernel computes", "="} {
		if !strings.Contains(got, frag) {
			t.Fatalf("counterexample rendering missing %q:\n%s", frag, got)
		}
	}
}

func TestLintEquivUsageFailures(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-equiv", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("missing -workload: exit %d, want 2", code)
	}
	if code := run([]string{"-equiv", "-workload", "fft:n=8", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("unknown workload: exit %d, want 2", code)
	}
	if code := run([]string{"-equiv", "-workload", "aes:bogus=1", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("unknown parameter: exit %d, want 2", code)
	}
	if code := run([]string{"-equiv", "-workload", "aes:rounds", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("malformed parameter: exit %d, want 2", code)
	}
	// A program file without its .outputs sidecar is a usage failure.
	prog := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [0][0][1]\n")
	if code := run([]string{"-equiv", "-workload", "bitweaving:bits=2,segments=1", prog}, &out, &errb); code != 2 {
		t.Fatalf("missing manifest: exit %d, want 2", code)
	}
}

func TestLintQuietSuppressesSummary(t *testing.T) {
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [0][0][1]\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-quiet", "-target", "1x4x4", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out.Len() != 0 {
		t.Fatalf("expected empty stdout, got %q", out.String())
	}
}
