package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProg writes instruction text to a temp file so the test exercises the
// same parse path the CLI uses.
func writeProg(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.cim")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanProgram(t *testing.T) {
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [0][0][1]\n")
	var out, errb bytes.Buffer
	code := run([]string{"-target", "1x4x4", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want := path + ": 3 instructions, 0 errors, 0 warnings, 0 notes\n"
	if out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
}

func TestLintReportsErrorWithInstructionIndex(t *testing.T) {
	path := writeProg(t, "Read [0][0][0]\n") // reads an undefined cell
	var out, errb bytes.Buffer
	code := run([]string{"-target", "1x4x4", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, frag := range []string{
		path + ": instr 0 (Read [0][0][0]): error[undef-read]",
		"read of undefined cell [0][0][0]",
		"1 errors",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("stdout missing %q:\n%s", frag, got)
		}
	}
}

func TestLintWerrorPromotesWarnings(t *testing.T) {
	// Instruction 1 loads buffer bit [0][0]; instruction 2 overwrites it
	// before anything consumed it — a dead store, warning severity.
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nRead [0][0][0]\nWrite [0][0][1]\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-target", "1x4x4", path}, &out, &errb); code != 0 {
		t.Fatalf("without -werror: exit %d, stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "warning[dead-store]") {
		t.Fatalf("expected a dead-store warning, got:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-werror", "-target", "1x4x4", path}, &out, &errb); code != 1 {
		t.Fatalf("with -werror: exit %d, want 1", code)
	}
}

func TestLintUsageAndParseFailures(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-target", "nonsense", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("bad target: exit %d, want 2", code)
	}
	if code := run([]string{"-tech", "DRAM", "x.cim"}, &out, &errb); code != 2 {
		t.Fatalf("unknown tech: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/prog.cim"}, &out, &errb); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
	bad := writeProg(t, "NOT A PROGRAM\n")
	if code := run([]string{bad}, &out, &errb); code != 2 {
		t.Fatalf("unparsable file: exit %d, want 2", code)
	}
}

func TestLintArraySizeGeometry(t *testing.T) {
	// -array-size 128 with one array is a 128x128 fabric for every Table 1
	// technology; a program touching row 200 must then be out of bounds.
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][200]\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-array-size", "128", "-arrays", "1", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "error[bounds]") {
		t.Fatalf("expected bounds error, got:\n%s", out.String())
	}
}

func TestLintQuietSuppressesSummary(t *testing.T) {
	path := writeProg(t, "Write [0][0][0] <x>\nRead [0][0][0]\nWrite [0][0][1]\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-quiet", "-target", "1x4x4", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out.Len() != 0 {
		t.Fatalf("expected empty stdout, got %q", out.String())
	}
}
