// Command sherlock-sim executes a CIM instruction program (as emitted by
// the sherlock compiler, Fig. 4 format) bit-exactly on the array simulator.
//
// Usage:
//
//	sherlock-sim -prog program.cim -target 4x512x512 \
//	    -inputs "a=1,b=0,c=1" [-verify] [-dump "0:3:10,0:3:11"] \
//	    [-faults -tech STT-MRAM -seed 7]
//
// Host-write instructions bind their named inputs from -inputs. -dump
// reads back cells given as array:col:row triples; without -dump every
// written cell is printed. -verify statically checks the program first and
// exits with the full diagnostic list instead of failing mid-execution.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sherlock/internal/device"
	"sherlock/internal/isa"
	"sherlock/internal/layout"
	"sherlock/internal/profiling"
	"sherlock/internal/sim"
	"sherlock/internal/verify"
)

func main() {
	var (
		progPath = flag.String("prog", "", "program file (required)")
		target   = flag.String("target", "4x512x512", "fabric as ARRAYSxROWSxCOLS")
		inputs   = flag.String("inputs", "", "comma-separated name=0|1 bindings")
		dump     = flag.String("dump", "", "comma-separated array:col:row cells to read back")
		doVerify = flag.Bool("verify", false, "statically verify the program before executing; exit with all diagnostics on failure")
		faults   = flag.Bool("faults", false, "enable decision-failure fault injection")
		tech     = flag.String("tech", "STT-MRAM", "technology for fault injection")
		seed     = flag.Int64("seed", 1, "fault-injection seed")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()
	if *progPath == "" {
		fatal(fmt.Errorf("-prog is required"))
	}
	text, err := os.ReadFile(*progPath)
	if err != nil {
		fatal(err)
	}
	prog, err := isa.ParseProgram(string(text))
	if err != nil {
		fatal(err)
	}
	t, err := parseTarget(*target)
	if err != nil {
		fatal(err)
	}
	binds, err := parseInputs(*inputs)
	if err != nil {
		fatal(err)
	}

	// With -verify, surface every static diagnostic up front and refuse to
	// run a broken program: a clean exit code plus the full finding list
	// beats the first dynamic error (or a mid-run panic) it would hit.
	if *doVerify {
		rep := verify.Program(prog, t)
		for _, f := range rep.Findings {
			fmt.Fprintf(os.Stderr, "sherlock-sim: %v\n", f)
		}
		if !rep.OK() {
			fatal(fmt.Errorf("program failed static verification; not executing"))
		}
	}

	// Fault-free runs go through the pre-decoded executor (the production
	// path of the facade and the experiment campaigns); fault injection
	// keeps the scalar interpreting machine, whose per-decision Bernoulli
	// sampler pins the historical per-seed fault patterns.
	var readOut func(layout.Place) (bool, error)
	var cellAt func(layout.Place) (bool, bool)
	var faultCount int
	if *faults {
		m := sim.NewMachine(t)
		tv, err := device.ParseTechnology(*tech)
		if err != nil {
			fatal(err)
		}
		m.EnableFaultInjection(device.ParamsFor(tv), *seed)
		if err := m.Run(prog, binds); err != nil {
			fatal(err)
		}
		faultCount = m.FaultCount()
		readOut = m.ReadOut
		cellAt = m.Cell
	} else {
		ex, err := sim.Predecode(prog, t)
		if err != nil {
			fatal(err)
		}
		m := ex.NewMachine(1)
		m.Reset(1)
		words := make(map[string]uint64, len(binds))
		for n, v := range binds {
			if v {
				words[n] = 1
			} else {
				words[n] = 0
			}
		}
		if err := m.RunMap(words); err != nil {
			fatal(err)
		}
		readOut = func(p layout.Place) (bool, error) {
			w, err := m.ReadOutWord(p, 0)
			return w&1 == 1, err
		}
		cellAt = func(p layout.Place) (bool, bool) {
			if !ex.Defined(p) {
				return false, false
			}
			w, err := m.ReadOutWord(p, 0)
			return w&1 == 1, err == nil
		}
	}
	st := prog.ComputeStats()
	fmt.Printf("# executed %d instructions (%d CIM reads, %d writes, %d host writes, %d shifts, %d nots)\n",
		st.Total, st.CIMReads, st.Writes, st.HostWrites, st.Shifts, st.Nots)
	if faultCount > 0 {
		fmt.Printf("# %d sense faults injected\n", faultCount)
	}

	if *dump != "" {
		for _, spec := range strings.Split(*dump, ",") {
			p, err := parsePlace(spec)
			if err != nil {
				fatal(err)
			}
			v, err := readOut(p)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s = %s\n", p, bit(v))
		}
		return
	}
	// Dump every defined cell, in address order.
	for a := 0; a < t.Arrays; a++ {
		for c := 0; c < t.Cols; c++ {
			for r := 0; r < t.Rows; r++ {
				p := layout.Place{Array: a, Col: c, Row: r}
				if v, ok := cellAt(p); ok {
					fmt.Printf("%s = %s\n", p, bit(v))
				}
			}
		}
	}
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

func parseTarget(s string) (layout.Target, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return layout.Target{}, fmt.Errorf("target %q not of form AxRxC", s)
	}
	var nums [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return layout.Target{}, fmt.Errorf("target %q: %v", s, err)
		}
		nums[i] = v
	}
	t := layout.Target{Arrays: nums[0], Rows: nums[1], Cols: nums[2]}
	return t, t.Validate()
}

func parseInputs(s string) (map[string]bool, error) {
	out := make(map[string]bool)
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad input binding %q", kv)
		}
		switch kv[eq+1:] {
		case "0":
			out[kv[:eq]] = false
		case "1":
			out[kv[:eq]] = true
		default:
			return nil, fmt.Errorf("input %q must be 0 or 1", kv)
		}
	}
	return out, nil
}

func parsePlace(s string) (layout.Place, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) != 3 {
		return layout.Place{}, fmt.Errorf("cell %q not of form array:col:row", s)
	}
	var nums [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return layout.Place{}, err
		}
		nums[i] = v
	}
	return layout.Place{Array: nums[0], Col: nums[1], Row: nums[2]}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sherlock-sim:", err)
	os.Exit(1)
}
