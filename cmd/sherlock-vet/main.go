// Command sherlock-vet enforces the repo's determinism invariants at the
// source level, using only the standard library's go/ast, go/parser and
// go/types (go.mod stays dependency-free). The compiler and simulators
// promise bit-identical output for identical inputs; that promise dies the
// moment nondeterministic iteration or wall-clock state leaks into an
// emitted program or a published table. The checks:
//
//	rangemap   — `range` over a map value. Map iteration order is
//	             randomized per run, so any map range that feeds emitted
//	             instructions or published rows is a reproducibility bug.
//	walltime   — time.Now / time.Since in deterministic packages.
//	globalrand — math/rand package-level functions (rand.Intn, rand.Perm,
//	             ...), which draw from the shared, unseeded global source.
//	             Constructing seeded generators (rand.New, rand.NewSource,
//	             rand.NewZipf) and the rand.Rand/rand.Source types stay
//	             legal.
//	sprintfkey — indexing a map with fmt.Sprintf(...): formatted-string
//	             keys invite collisions and hide the real key structure;
//	             use a comparable struct key.
//	staleallow — a `//sherlock:allow` directive that suppressed nothing.
//	             Stale escape hatches outlive refactors and then silently
//	             waive the next real finding on that line; delete them.
//
// A finding is suppressed by `//sherlock:allow <check>` on the same line or
// the line directly above — the escape hatch for ranges that re-sort before
// publishing and similar audited cases. Every directive must earn its keep:
// one that matches no finding is itself reported (staleallow) and cannot be
// suppressed.
//
// Usage:
//
//	sherlock-vet [-root DIR] [packages...]
//
// Packages default to the deterministic core: the root facade (which now
// carries the streaming execution layer), internal/mapping,
// internal/sim, internal/experiments, internal/isa, internal/readyq,
// plus the serving layer (internal/serve, internal/memo, internal/pool),
// the analytics workload builders (internal/workloads/analytics),
// whose coalesced outputs must be bit-identical however batches compose,
// and the equivalence-proof stack (internal/aig, internal/verify,
// internal/coopt), where nondeterminism would make proofs and
// counterexamples irreproducible. Directories are scanned
// non-recursively and _test.go files are skipped. Exit status: 0 clean,
// 1 findings, 2 parse/usage failure.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var defaultDirs = []string{
	".",
	"internal/mapping",
	"internal/sim",
	"internal/experiments",
	"internal/isa",
	"internal/readyq",
	"internal/serve",
	"internal/memo",
	"internal/pool",
	"internal/aig",
	"internal/coopt",
	"internal/verify",
	"internal/workloads/analytics",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type finding struct {
	pos   token.Position
	check string
	msg   string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sherlock-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root the package directories are relative to")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}

	ld := newLoader(*root)
	var all []finding
	for _, dir := range dirs {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "sherlock-vet: %v\n", err)
			return 2
		}
		all = append(all, pkg.vet()...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range all {
		fmt.Fprintf(stdout, "%s: %s: %s\n", f.pos, f.check, f.msg)
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// loader parses and type-checks package directories on demand. It doubles
// as the types.Importer: sherlock/... imports are resolved recursively from
// source under root, everything else (the standard library) is stubbed out
// with an empty package — the resulting type errors are swallowed, which is
// fine because every check below degrades safely when a type is unknown.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*checkedPkg // by directory relative to root
	deep int                    // import recursion guard
}

type checkedPkg struct {
	files []*ast.File
	info  *types.Info
	tpkg  *types.Package
	fset  *token.FileSet
	// allowed maps file -> line -> set of checks suppressed on that line.
	allowed map[string]map[int]map[string]bool
	// used records which collected directives actually suppressed a
	// finding during vet(); the rest are reported as staleallow.
	used map[allowKey]bool
}

// allowKey identifies one check name within one //sherlock:allow directive.
// A comparable struct key, not a formatted string — exactly what the
// sprintfkey check asks of everyone else.
type allowKey struct {
	file  string
	line  int
	check string
}

func newLoader(root string) *loader {
	return &loader{root: root, fset: token.NewFileSet(), pkgs: map[string]*checkedPkg{}}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if rel, ok := strings.CutPrefix(path, "sherlock/"); ok {
		if l.deep > 40 {
			return nil, fmt.Errorf("import cycle or excessive depth at %q", path)
		}
		l.deep++
		defer func() { l.deep-- }()
		pkg, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		return pkg.tpkg, nil
	}
	// Standard library: a complete, empty stub. Uses of its members become
	// type errors, which the checker is configured to ignore.
	stub := types.NewPackage(path, filepath.Base(path))
	stub.MarkComplete()
	return stub, nil
}

func (l *loader) loadDir(dir string) (*checkedPkg, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := l.pkgs[dir]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", dir)
		}
		return pkg, nil
	}
	l.pkgs[dir] = nil // cycle marker

	abs := filepath.Join(l.root, dir)
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	pkg := &checkedPkg{fset: l.fset, allowed: map[string]map[int]map[string]bool{}, used: map[allowKey]bool{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(abs, name)
		file, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.files = append(pkg.files, file)
		pkg.collectAllows(file)
	}
	if len(pkg.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", abs)
	}

	pkg.info = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // stubbed stdlib makes type errors expected
	}
	pkg.tpkg, _ = conf.Check("sherlock/"+filepath.ToSlash(dir), l.fset, pkg.files, pkg.info)
	l.pkgs[dir] = pkg
	return pkg, nil
}

// collectAllows records every `//sherlock:allow check1,check2` directive by
// file and line.
func (p *checkedPkg) collectAllows(file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			rest, ok := strings.CutPrefix(strings.TrimSpace(text), "sherlock:allow")
			if !ok {
				continue
			}
			pos := p.fset.Position(c.Pos())
			lines := p.allowed[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				p.allowed[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = map[string]bool{}
				lines[pos.Line] = set
			}
			for _, check := range strings.Split(rest, ",") {
				// Anything after whitespace within a piece is commentary:
				// `//sherlock:allow rangemap (sorted below)`.
				if fields := strings.Fields(check); len(fields) > 0 {
					set[fields[0]] = true
				}
			}
		}
	}
}

func (p *checkedPkg) isAllowed(pos token.Position, check string) bool {
	lines := p.allowed[pos.Filename]
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if lines[line][check] {
			p.used[allowKey{pos.Filename, line, check}] = true
			return true
		}
	}
	return false
}

func (p *checkedPkg) vet() []finding {
	var out []finding
	report := func(pos token.Pos, check, format string, args ...any) {
		position := p.fset.Position(pos)
		if p.isAllowed(position, check) {
			return
		}
		out = append(out, finding{pos: position, check: check, msg: fmt.Sprintf(format, args...)})
	}
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				p.checkRangeMap(n, report)
			case *ast.SelectorExpr:
				p.checkPkgCall(n, report)
			case *ast.IndexExpr:
				p.checkSprintfKey(n, report)
			}
			return true
		})
	}
	// Stale-allow sweep: a directive that suppressed nothing is itself a
	// finding — an unearned waiver that will silently swallow the next real
	// finding on its line. Appended unconditionally (no isAllowed): the
	// escape hatch cannot excuse itself. The caller sorts findings, so
	// ranging over the directive maps here is order-insensitive.
	for file, lines := range p.allowed { //sherlock:allow rangemap (findings re-sorted by caller)
		for line, set := range lines { //sherlock:allow rangemap
			for check := range set { //sherlock:allow rangemap
				if p.used[allowKey{file, line, check}] {
					continue
				}
				out = append(out, finding{
					pos:   token.Position{Filename: file, Line: line, Column: 1},
					check: "staleallow",
					msg:   fmt.Sprintf("//sherlock:allow %s suppresses no finding; delete the stale directive", check),
				})
			}
		}
	}
	return out
}

// checkRangeMap flags `range` over map values: iteration order is
// randomized per run, so anything it feeds — emitted instructions,
// published tables, slice appends later iterated in order — silently loses
// determinism.
func (p *checkedPkg) checkRangeMap(rs *ast.RangeStmt, report func(token.Pos, string, string, ...any)) {
	tv, ok := p.info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	report(rs.Pos(), "rangemap",
		"range over map %s: iteration order is nondeterministic; sort keys first or use //sherlock:allow rangemap if provably order-insensitive",
		types.TypeString(tv.Type, func(*types.Package) string { return "" }))
}

// pkgOf resolves a selector's receiver to the import path of a package
// name, or "" when it is an ordinary value.
func (p *checkedPkg) pkgOf(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// globalRandAllowed lists the math/rand members that do NOT touch the
// shared global source: constructors for seeded generators and the types
// themselves.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true,
}

func (p *checkedPkg) checkPkgCall(sel *ast.SelectorExpr, report func(token.Pos, string, string, ...any)) {
	switch p.pkgOf(sel.X) {
	case "time":
		if name := sel.Sel.Name; name == "Now" || name == "Since" {
			report(sel.Pos(), "walltime",
				"time.%s reads the wall clock: deterministic packages must take timestamps as inputs, not sample them", name)
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[sel.Sel.Name] {
			report(sel.Pos(), "globalrand",
				"rand.%s draws from the shared global source: use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", sel.Sel.Name)
		}
	}
}

// checkSprintfKey flags m[fmt.Sprintf(...)]: bucketing by a formatted
// string invites key collisions ("1,23" vs "12,3") and hides the key's
// structure from the type system; a comparable struct key does both better.
func (p *checkedPkg) checkSprintfKey(ix *ast.IndexExpr, report func(token.Pos, string, string, ...any)) {
	call, ok := ix.Index.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" || p.pkgOf(sel.X) != "fmt" {
		return
	}
	// Only flag when the indexed expression is (or could be) a map; indexing
	// a slice with a Sprintf result would not type-check anyway.
	report(ix.Pos(), "sprintfkey",
		"map keyed by fmt.Sprintf: formatted-string buckets collide silently; key by a comparable struct instead")
}
