package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// vetSrc writes src as pkg/x.go under a temp root and runs the analyzer
// over it, returning the exit code and stdout.
func vetSrc(t *testing.T, src string) (int, string) {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-root", root, "pkg"}, &out, &errb)
	if errb.Len() > 0 && code != 2 {
		t.Fatalf("unexpected stderr: %s", errb.String())
	}
	return code, out.String()
}

func TestVetRangeOverMap(t *testing.T) {
	code, out := vetSrc(t, `package pkg
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if code != 1 || !strings.Contains(out, "rangemap: range over map map[string]int") {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "x.go:4:2: rangemap") {
		t.Fatalf("finding not anchored at the range statement: %q", out)
	}
}

func TestVetRangeOverSliceIsFine(t *testing.T) {
	code, out := vetSrc(t, `package pkg
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
`)
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestVetAllowDirective(t *testing.T) {
	for _, src := range []string{
		// Same line.
		`package pkg
func f(m map[string]int) (s int) {
	for _, v := range m { //sherlock:allow rangemap
		s += v
	}
	return
}
`,
		// Line above, with trailing commentary after the check name.
		`package pkg
func f(m map[string]int) (s int) {
	//sherlock:allow rangemap (sum is commutative)
	for _, v := range m {
		s += v
	}
	return
}
`,
	} {
		if code, out := vetSrc(t, src); code != 0 {
			t.Fatalf("allow directive ignored: code=%d out=%q\nsrc:\n%s", code, out, src)
		}
	}
	// The directive must name the right check to count.
	code, _ := vetSrc(t, `package pkg
func f(m map[string]int) (s int) {
	for _, v := range m { //sherlock:allow walltime
		s += v
	}
	return
}
`)
	if code != 1 {
		t.Fatalf("wrong-check directive suppressed the finding")
	}
}

func TestVetStaleAllow(t *testing.T) {
	// A directive that suppresses nothing is itself a finding, anchored at
	// the directive's line.
	code, out := vetSrc(t, `package pkg
func f(xs []int) (s int) {
	//sherlock:allow rangemap (left behind after a refactor)
	for _, v := range xs {
		s += v
	}
	return
}
`)
	if code != 1 || !strings.Contains(out, "staleallow") {
		t.Fatalf("stale directive not reported: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "x.go:3:1: staleallow") {
		t.Fatalf("finding not anchored at the directive: %q", out)
	}
	if !strings.Contains(out, "//sherlock:allow rangemap suppresses no finding") {
		t.Fatalf("message does not name the stale check: %q", out)
	}
}

func TestVetStaleAllowPerCheck(t *testing.T) {
	// One directive naming two checks: the matched check is earned, the
	// unmatched one is stale — staleness is tracked per check name, not per
	// comment.
	code, out := vetSrc(t, `package pkg
func f(m map[string]int) (s int) {
	for _, v := range m { //sherlock:allow rangemap,walltime
		s += v
	}
	return
}
`)
	if code != 1 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "staleallow") || !strings.Contains(out, "walltime suppresses no finding") {
		t.Fatalf("unmatched check of a shared directive not reported: %q", out)
	}
	if strings.Contains(out, "rangemap suppresses no finding") {
		t.Fatalf("earned check flagged stale: %q", out)
	}
}

func TestVetStaleAllowCannotExcuseItself(t *testing.T) {
	code, out := vetSrc(t, `package pkg
//sherlock:allow staleallow
//sherlock:allow rangemap
func f() {}
`)
	if code != 1 || strings.Count(out, "staleallow:") != 2 {
		t.Fatalf("directives excused themselves: code=%d out=%q", code, out)
	}
}

func TestVetWallClock(t *testing.T) {
	code, out := vetSrc(t, `package pkg
import clock "time"
func f() int64 {
	t0 := clock.Now()
	return int64(clock.Since(t0))
}
`)
	if code != 1 || !strings.Contains(out, "walltime: time.Now") || !strings.Contains(out, "walltime: time.Since") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestVetGlobalRand(t *testing.T) {
	code, out := vetSrc(t, `package pkg
import "math/rand"
func f() int {
	return rand.Intn(10)
}
func g(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
`)
	if code != 1 || !strings.Contains(out, "globalrand: rand.Intn") {
		t.Fatalf("code=%d out=%q", code, out)
	}
	// The seeded-constructor path must stay legal: exactly one finding.
	if strings.Count(out, "globalrand") != 1 {
		t.Fatalf("seeded constructors flagged too: %q", out)
	}
}

func TestVetSprintfKey(t *testing.T) {
	code, out := vetSrc(t, `package pkg
import "fmt"
func f(m map[string]int, a, b int) int {
	return m[fmt.Sprintf("%d,%d", a, b)]
}
`)
	if code != 1 || !strings.Contains(out, "sprintfkey") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestVetShadowedPackageNameIsFine(t *testing.T) {
	// A local variable named like the package must not trigger the check.
	code, out := vetSrc(t, `package pkg
type clock struct{}
func (clock) Now() int { return 0 }
func f() int {
	var time clock
	return time.Now()
}
`)
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestVetParseFailure(t *testing.T) {
	code, _ := vetSrc(t, "package pkg\nfunc f( {\n")
	if code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-root", t.TempDir(), "nope"}, &out, &errb); code != 2 {
		t.Fatalf("missing dir: code=%d, want 2", code)
	}
}

// TestVetRepoIsClean is the invariant the CI step enforces: the
// deterministic core of this repository carries no unexplained map ranges,
// wall-clock reads, global randomness, or Sprintf-keyed maps.
func TestVetRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", "../.."}, &out, &errb)
	if code != 0 {
		t.Fatalf("sherlock-vet over the repo: exit %d\n%s%s", code, out.String(), errb.String())
	}
}
