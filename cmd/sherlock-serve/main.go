// Command sherlock-serve runs the compile-once serve-many front door: an
// HTTP service that compiles C-subset kernels behind a content-addressed
// registry (the map → schedule → merge → predecode pipeline runs at most
// once per unique program), coalesces concurrent callers' vectors into
// shared 256-lane executor passes, and routes each request to the CIM
// simulator or the host CPU baseline by modeled latency.
//
// Usage:
//
//	sherlock-serve [-addr :8437] [-window 200us] [-batch-lanes 256]
//	               [-max-programs N] [-max-bytes N] [-parallelism N]
//	               [-passes N] [-backend auto|cim|cpu]
//
// Endpoints: POST /v1/compile, POST /v1/run, GET /v1/stats, GET /healthz
// (see internal/serve for the request shapes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sherlock/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	window := flag.Duration("window", 200*time.Microsecond,
		"batch window: how long the first request of a batch waits for company (negative disables the timer)")
	batchLanes := flag.Int("batch-lanes", 256, "lane count that flushes a batch (256 = one full executor pass)")
	maxPrograms := flag.Int("max-programs", 1024, "compiled programs kept resident (0 = unbounded)")
	maxBytes := flag.Int64("max-bytes", 256<<20, "estimated resident program bytes (0 = unbounded)")
	parallelism := flag.Int("parallelism", 0, "workers per merged batch (0 = GOMAXPROCS)")
	passes := flag.Int("passes", 0, "concurrent executor passes across all kernels (0 = unlimited)")
	backend := flag.String("backend", "auto", "execution backend: auto (cost-model routing), cim, or cpu")
	flag.Parse()

	force, err := serve.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	svc := serve.NewService(serve.Config{
		Registry:            serve.RegistryConfig{MaxPrograms: *maxPrograms, MaxBytes: *maxBytes},
		Window:              *window,
		MaxBatchLanes:       *batchLanes,
		Parallelism:         *parallelism,
		MaxConcurrentPasses: *passes,
		Backend:             force,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(svc),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		svc.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("sherlock-serve listening on %s (window %v, batch %d lanes, backend %s)",
		*addr, *window, *batchLanes, *backend)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	st := svc.Stats()
	fmt.Printf("served %d vectors: %d cim / %d cpu requests, %d compiles, %d cache hits\n",
		st.Vectors, st.CIMRequests, st.CPURequests, st.Registry.Misses, st.Registry.Hits)
}
