// Command benchdiff compares two `go test -bench` logs and flags
// regressions, benchstat-style but dependency-free. It is wired into CI as
// a blocking step with advisory findings: the bench-smoke log of the
// current commit is compared against the committed baseline
// (bench-baseline.txt), and any benchmark whose ns/op grew beyond the
// threshold is emitted as a GitHub Actions ::warning annotation.
// Regressions never fail the build — single-iteration smoke numbers on
// shared runners are noisy, so the annotations are a prompt to re-measure,
// not a verdict. Malformed input DOES fail it (exit 2): a benchmark line
// whose ns/op cannot be parsed, or a log with no benchmark results at all,
// means the smoke run itself broke, and silently comparing nothing would
// let real regressions sail through unmeasured.
//
// Usage:
//
//	benchdiff -base bench-baseline.txt -new bench-smoke.log [-threshold 1.20]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		basePath  = flag.String("base", "", "baseline benchmark log (required)")
		newPath   = flag.String("new", "", "current benchmark log (required)")
		threshold = flag.Float64("threshold", 1.20, "regression ratio above which a warning is emitted")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -new are required")
		os.Exit(2)
	}
	base, err := parseFile(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := parseFile(*newPath)
	if err != nil {
		fatal(err)
	}
	report(os.Stdout, diff(base, cur, *threshold))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// result is one benchmark's ns/op, averaged over repeated lines (e.g.
// -count=N logs).
type result struct {
	nsPerOp float64
	lines   int
}

func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseLog(f)
}

// parseLog extracts ns/op per benchmark from `go test -bench` output. A
// benchmark line looks like
//
//	BenchmarkName/sub-8   	 123	  456789 ns/op	  1.5 extra_metric
//
// The trailing -N GOMAXPROCS suffix is stripped so logs from machines with
// different core counts stay comparable. Repeated names average.
func parseLog(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		name, ns, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		if !ok {
			continue
		}
		res := out[name]
		res.nsPerOp += ns
		res.lines++
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results in log; did the bench run fail?")
	}
	for name, res := range out {
		res.nsPerOp /= float64(res.lines)
		out[name] = res
	}
	return out, nil
}

// parseLine parses one benchmark output line. Non-benchmark lines
// (headers, PASS/ok lines, metrics-only lines) report ok=false; a line
// that claims to be a benchmark result but cannot yield an ns/op value is
// an error — truncated or corrupted logs must fail the comparison, not
// thin it out silently.
func parseLine(line string) (name string, nsPerOp float64, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false, nil
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, aerr := strconv.Atoi(name[i+1:]); aerr == nil {
			name = name[:i]
		}
	}
	for i := 2; i < len(fields); i++ {
		if fields[i] != "ns/op" {
			continue
		}
		v, perr := strconv.ParseFloat(fields[i-1], 64)
		if perr != nil {
			return "", 0, false, fmt.Errorf("benchmark %s has unparsable ns/op value %q", name, fields[i-1])
		}
		return name, v, true, nil
	}
	return "", 0, false, fmt.Errorf("benchmark line for %s carries no ns/op field: %q", name, line)
}

// delta is one benchmark's comparison.
type delta struct {
	name       string
	base, cur  float64
	ratio      float64
	regression bool
}

// diff compares every benchmark present in both logs. Benchmarks that
// appear on only one side are skipped: new benchmarks have no baseline yet
// and removed ones have nothing to regress.
func diff(base, cur map[string]result, threshold float64) []delta {
	var out []delta
	for name, b := range base {
		c, ok := cur[name]
		if !ok || b.nsPerOp <= 0 {
			continue
		}
		ratio := c.nsPerOp / b.nsPerOp
		out = append(out, delta{
			name:       name,
			base:       b.nsPerOp,
			cur:        c.nsPerOp,
			ratio:      ratio,
			regression: ratio > threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ratio > out[j].ratio })
	return out
}

func report(w io.Writer, deltas []delta) {
	regressions := 0
	for _, d := range deltas {
		if d.regression {
			regressions++
			// GitHub Actions annotation syntax; plain text elsewhere.
			fmt.Fprintf(w, "::warning title=benchmark regression::%s: %.0f ns/op -> %.0f ns/op (%+.0f%%)\n",
				d.name, d.base, d.cur, 100*(d.ratio-1))
		}
	}
	fmt.Fprintf(w, "benchdiff: %d benchmarks compared, %d above threshold\n", len(deltas), regressions)
	for _, d := range deltas {
		marker := " "
		if d.regression {
			marker = "!"
		}
		fmt.Fprintf(w, "%s %-60s %12.0f -> %12.0f ns/op  (%+.0f%%)\n",
			marker, d.name, d.base, d.cur, 100*(d.ratio-1))
	}
}
