package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: sherlock
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunBatch/seq-8         	     582	   2024423 ns/op	    126456 vectors_per_sec
BenchmarkRunBatch/par-8         	     588	   2040578 ns/op	    125445 vectors_per_sec
BenchmarkPredecode-8            	   12337	    102427 ns/op	       949.0 micro_ops
PASS
ok  	sherlock	6.672s
`

func TestParseLog(t *testing.T) {
	got, err := parseLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkRunBatch/seq": 2024423,
		"BenchmarkRunBatch/par": 2040578,
		"BenchmarkPredecode":    102427,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name].nsPerOp != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name].nsPerOp, ns)
		}
	}
}

func TestParseLogAveragesRepeats(t *testing.T) {
	log := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 300 ns/op\n"
	got, err := parseLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].nsPerOp != 200 {
		t.Fatalf("average = %v, want 200", got["BenchmarkX"].nsPerOp)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	sherlock	6.672s",
		"goos: linux",
		"BenchmarkNoNs 12 34 allocs/op",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := map[string]result{
		"A":       {nsPerOp: 100, lines: 1},
		"B":       {nsPerOp: 100, lines: 1},
		"Removed": {nsPerOp: 50, lines: 1},
	}
	cur := map[string]result{
		"A":   {nsPerOp: 130, lines: 1}, // +30%: regression at 1.20
		"B":   {nsPerOp: 110, lines: 1}, // +10%: within threshold
		"New": {nsPerOp: 10, lines: 1},  // no baseline: skipped
	}
	ds := diff(base, cur, 1.20)
	if len(ds) != 2 {
		t.Fatalf("compared %d benchmarks, want 2: %+v", len(ds), ds)
	}
	// Sorted worst-first.
	if ds[0].name != "A" || !ds[0].regression {
		t.Errorf("worst delta = %+v, want regression on A", ds[0])
	}
	if ds[1].name != "B" || ds[1].regression {
		t.Errorf("second delta = %+v, want non-regression on B", ds[1])
	}
}

func TestReportEmitsAnnotations(t *testing.T) {
	var sb strings.Builder
	report(&sb, []delta{
		{name: "A", base: 100, cur: 130, ratio: 1.3, regression: true},
		{name: "B", base: 100, cur: 90, ratio: 0.9},
	})
	out := sb.String()
	if !strings.Contains(out, "::warning title=benchmark regression::A:") {
		t.Errorf("missing annotation for A:\n%s", out)
	}
	if strings.Contains(out, "::warning title=benchmark regression::B:") {
		t.Errorf("unexpected annotation for B:\n%s", out)
	}
	if !strings.Contains(out, "2 benchmarks compared, 1 above threshold") {
		t.Errorf("missing summary:\n%s", out)
	}
}
