package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: sherlock
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunBatch/seq-8         	     582	   2024423 ns/op	    126456 vectors_per_sec
BenchmarkRunBatch/par-8         	     588	   2040578 ns/op	    125445 vectors_per_sec
BenchmarkPredecode-8            	   12337	    102427 ns/op	       949.0 micro_ops
PASS
ok  	sherlock	6.672s
`

func TestParseLog(t *testing.T) {
	got, err := parseLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkRunBatch/seq": 2024423,
		"BenchmarkRunBatch/par": 2040578,
		"BenchmarkPredecode":    102427,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name].nsPerOp != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name].nsPerOp, ns)
		}
	}
}

func TestParseLogAveragesRepeats(t *testing.T) {
	log := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 300 ns/op\n"
	got, err := parseLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].nsPerOp != 200 {
		t.Fatalf("average = %v, want 200", got["BenchmarkX"].nsPerOp)
	}
}

func TestParseLineSkipsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	sherlock	6.672s",
		"goos: linux",
		"--- BENCH: BenchmarkX-8",
		"",
	} {
		if _, _, ok, err := parseLine(line); ok || err != nil {
			t.Errorf("parseLine(%q) = ok %v, err %v; want skipped", line, ok, err)
		}
	}
}

// A line that claims to be a benchmark result but yields no ns/op value is
// a hard error: truncated logs must fail the comparison, not thin it out.
func TestParseLineErrorsOnMalformedBenchmarks(t *testing.T) {
	for _, line := range []string{
		"BenchmarkNoNs 12 34 allocs/op",
		"BenchmarkTruncated-8   582",
		"BenchmarkBadValue-8 582 woops ns/op",
	} {
		if _, _, _, err := parseLine(line); err == nil {
			t.Errorf("parseLine accepted malformed line %q", line)
		}
	}
}

func TestParseLogErrorsCarryLineNumbers(t *testing.T) {
	log := "goos: linux\nBenchmarkX-4 10 100 ns/op\nBenchmarkBad-4 10 nope ns/op\n"
	_, err := parseLog(strings.NewReader(log))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-3 parse error", err)
	}
}

func TestParseLogErrorsOnEmptyResults(t *testing.T) {
	for _, log := range []string{"", "goos: linux\nPASS\nok  \tsherlock\t0.1s\n"} {
		if _, err := parseLog(strings.NewReader(log)); err == nil {
			t.Errorf("parseLog accepted a log with no benchmark results: %q", log)
		}
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := map[string]result{
		"A":       {nsPerOp: 100, lines: 1},
		"B":       {nsPerOp: 100, lines: 1},
		"Removed": {nsPerOp: 50, lines: 1},
	}
	cur := map[string]result{
		"A":   {nsPerOp: 130, lines: 1}, // +30%: regression at 1.20
		"B":   {nsPerOp: 110, lines: 1}, // +10%: within threshold
		"New": {nsPerOp: 10, lines: 1},  // no baseline: skipped
	}
	ds := diff(base, cur, 1.20)
	if len(ds) != 2 {
		t.Fatalf("compared %d benchmarks, want 2: %+v", len(ds), ds)
	}
	// Sorted worst-first.
	if ds[0].name != "A" || !ds[0].regression {
		t.Errorf("worst delta = %+v, want regression on A", ds[0])
	}
	if ds[1].name != "B" || ds[1].regression {
		t.Errorf("second delta = %+v, want non-regression on B", ds[1])
	}
}

func TestReportEmitsAnnotations(t *testing.T) {
	var sb strings.Builder
	report(&sb, []delta{
		{name: "A", base: 100, cur: 130, ratio: 1.3, regression: true},
		{name: "B", base: 100, cur: 90, ratio: 0.9},
	})
	out := sb.String()
	if !strings.Contains(out, "::warning title=benchmark regression::A:") {
		t.Errorf("missing annotation for A:\n%s", out)
	}
	if strings.Contains(out, "::warning title=benchmark regression::B:") {
		t.Errorf("unexpected annotation for B:\n%s", out)
	}
	if !strings.Contains(out, "2 benchmarks compared, 1 above threshold") {
		t.Errorf("missing summary:\n%s", out)
	}
}
