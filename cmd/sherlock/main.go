// Command sherlock is the end-to-end compiler CLI: it reads a C-subset
// bulk-bitwise kernel, maps it onto a CIM array, and emits the instruction
// program together with cost and reliability reports.
//
// Usage:
//
//	sherlock -in kernel.c [-tech STT-MRAM|ReRAM|PCM] [-size 512]
//	         [-mapper naive|opt] [-mra] [-mra-fraction 1.0] [-nand]
//	         [-optimize] [-optimize-iters 4] [-o program.cim] [-stats]
//
// -optimize lifts the kernel into an and-inverter graph and runs the
// synthesis↔scheduling co-optimization loop before mapping; every adopted
// candidate is equivalence-checked and verifier-gated, and the Algorithm 2
// baseline is kept whenever no candidate beats it.
//
// With no -o the program is written to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sherlock"
	"sherlock/internal/sim"
)

func main() {
	var (
		inPath   = flag.String("in", "", "kernel source file (default: stdin)")
		tech     = flag.String("tech", "STT-MRAM", "technology: STT-MRAM, ReRAM or PCM")
		size     = flag.Int("size", 512, "squared array dimension")
		arrays   = flag.Int("arrays", 4, "arrays available to the mapper")
		mapper   = flag.String("mapper", "opt", "mapping algorithm: naive or opt")
		mra      = flag.Bool("mra", false, "fuse same-type chains into multi-operand ops (MRA >= 2)")
		mraFrac  = flag.Float64("mra-fraction", 1.0, "fraction of fusion opportunities taken")
		nand     = flag.Bool("nand", false, "lower XOR/OR to NAND/NOT (reliable STT-MRAM variant)")
		recycle  = flag.Bool("recycle", false, "reuse rows of dead intermediates (capacity extension)")
		wear     = flag.Bool("wear", false, "print the per-cell write-pressure report to stderr")
		timeline = flag.String("timeline", "", "write the parallel execution timeline CSV here")
		outPath  = flag.String("o", "", "write the program here (default: stdout)")
		stats    = flag.Bool("stats", false, "print mapping, cost and reliability statistics to stderr")
		optimize = flag.Bool("optimize", false, "resynthesize the kernel (AIG rewrite loop) before mapping")
		optIters = flag.Int("optimize-iters", 4, "candidate-generation rounds for -optimize")
	)
	flag.Parse()

	src, err := readSource(*inPath)
	if err != nil {
		fatal(err)
	}
	techVal, err := parseTech(*tech)
	if err != nil {
		fatal(err)
	}
	mk := sherlock.MapperOptimized
	switch *mapper {
	case "naive":
		mk = sherlock.MapperNaive
	case "opt", "optimized":
	default:
		fatal(fmt.Errorf("unknown mapper %q", *mapper))
	}

	c, err := sherlock.CompileC(src, sherlock.Options{
		Tech:               techVal,
		ArraySize:          *size,
		Arrays:             *arrays,
		Mapper:             mk,
		MultiRowActivation: *mra,
		MRAFraction:        *mraFrac,
		NANDLowering:       *nand,
		RecycleRows:        *recycle,
		WearLeveling:       *recycle, // recycled rows rotate for endurance
		Resynthesize:       *optimize,
		ResynthIterations:  *optIters,
	})
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if _, err := io.WriteString(out, c.Program.String()); err != nil {
		fatal(err)
	}

	if *timeline != "" {
		events, _, err := c.Timeline()
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*timeline)
		if err != nil {
			fatal(err)
		}
		if err := sim.WriteTimelineCSV(f, events); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *wear {
		if rep, err := c.Wear(); err == nil {
			fmt.Fprintf(os.Stderr, "wear: %d writes over %d cells, max %d/cell (mean %.2f)\n",
				rep.TotalWrites, rep.CellsUsed, rep.MaxWritesPerCell, rep.MeanWritesPerCell)
		}
	}
	if *stats {
		st := c.Graph.ComputeStats()
		fmt.Fprintf(os.Stderr, "DFG: %d ops, %d operands, critical path %d\n",
			st.Ops, st.Operands, st.CriticalPath)
		if rs := c.Resynth; rs != nil {
			if rs.Improved {
				fmt.Fprintf(os.Stderr, "resynth: improved, objective %.4f, ANDs %d -> %d, %d evaluations (%d cached), %d rejected\n",
					rs.BestObjective, rs.AndsBefore, rs.AndsAfter, rs.Evaluations, rs.CacheHits, rs.Rejected)
			} else {
				fmt.Fprintf(os.Stderr, "resynth: kept Algorithm 2 baseline, %d evaluations (%d cached), %d rejected\n",
					rs.Evaluations, rs.CacheHits, rs.Rejected)
			}
		}
		fmt.Fprintf(os.Stderr, "mapping: %d instructions, %d copies, %d columns",
			c.Stats.Instructions, c.Stats.Copies, c.Stats.ColumnsUsed)
		if c.Stats.Clusters > 0 {
			fmt.Fprintf(os.Stderr, ", %d clusters, %d instructions merged away",
				c.Stats.Clusters, c.Stats.MergedAway)
		}
		fmt.Fprintln(os.Stderr)
		if cost, err := c.Cost(); err == nil {
			line := fmt.Sprintf("cost: %.2f us latency, %.3f nJ energy (per lane)",
				cost.LatencyUS(), cost.EnergyPJ/1e3)
			if par, err := c.CostParallel(); err == nil && par.LatencyNS < cost.LatencyNS {
				line += fmt.Sprintf("; %.2f us with multi-array overlap", par.LatencyUS())
			}
			fmt.Fprintln(os.Stderr, line)
		}
		if rel, err := c.Reliability(); err == nil {
			fmt.Fprintf(os.Stderr, "reliability: P_app = %.3e over %d sense decisions\n",
				rel.PApp, rel.SenseDecisions)
		}
	}
}

func readSource(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseTech(s string) (sherlock.Technology, error) {
	switch s {
	case "STT-MRAM", "stt", "stt-mram":
		return sherlock.STTMRAM, nil
	case "ReRAM", "reram":
		return sherlock.ReRAM, nil
	case "PCM", "pcm":
		return sherlock.PCM, nil
	}
	return 0, fmt.Errorf("unknown technology %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sherlock:", err)
	os.Exit(1)
}
