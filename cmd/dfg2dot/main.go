// Command dfg2dot renders a kernel's data-flow graph in Graphviz DOT
// format (the style of the paper's Fig. 3b: operand nodes orange, op nodes
// blue with their b-level priorities in red).
//
// Usage:
//
//	dfg2dot -in kernel.c [-mra] [-nand] [-o out.dot]
//	dfg2dot -workload bitweaving|sobel|aes [-o out.dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"sherlock/internal/cparser"
	"sherlock/internal/dfg"
	"sherlock/internal/workloads/aes"
	"sherlock/internal/workloads/bitweaving"
	"sherlock/internal/workloads/sobel"
)

func main() {
	var (
		inPath   = flag.String("in", "", "kernel source file")
		workload = flag.String("workload", "", "built-in workload: bitweaving, sobel or aes")
		mra      = flag.Bool("mra", false, "apply node substitution first")
		maxRows  = flag.Int("max-rows", 4, "fused arity bound for -mra")
		nand     = flag.Bool("nand", false, "apply NAND lowering first")
		outPath  = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()

	g, title, err := buildGraph(*inPath, *workload)
	if err != nil {
		fatal(err)
	}
	if *mra {
		g, _ = dfg.SubstituteNodes(g, dfg.SubstituteOptions{MaxOperands: *maxRows, Fraction: 1})
	}
	if *nand {
		g, _ = dfg.LowerToNAND(g)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := g.WriteDOT(out, title); err != nil {
		fatal(err)
	}
}

func buildGraph(inPath, workload string) (*dfg.Graph, string, error) {
	switch {
	case inPath != "" && workload != "":
		return nil, "", fmt.Errorf("use either -in or -workload, not both")
	case inPath != "":
		src, err := os.ReadFile(inPath)
		if err != nil {
			return nil, "", err
		}
		c, err := cparser.Compile(string(src))
		if err != nil {
			return nil, "", err
		}
		return c.Graph, c.KernelName, nil
	case workload == "bitweaving":
		g, err := bitweaving.Build(bitweaving.Config{Bits: 4, Segments: 1})
		return g, "bitweaving", err
	case workload == "sobel":
		g, err := sobel.Build(sobel.Config{TileW: 1, TileH: 1, PixelBits: 4, Threshold: 8})
		return g, "sobel", err
	case workload == "aes":
		g, err := aes.Build(aes.Config{Rounds: 1})
		return g, "aes", err
	default:
		return nil, "", fmt.Errorf("give -in FILE or -workload NAME")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfg2dot:", err)
	os.Exit(1)
}
