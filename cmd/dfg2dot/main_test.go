package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildGraphWorkloads(t *testing.T) {
	for _, w := range []string{"bitweaving", "sobel", "aes"} {
		g, title, err := buildGraph("", w)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if title != w {
			t.Fatalf("%s: title = %q", w, title)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", w)
		}
	}
}

func TestBuildGraphFromKernelFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.c")
	src := `void halfadd(word a, word b, word *sum, word *carry) {
	*sum = a ^ b;
	*carry = a & b;
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	g, title, err := buildGraph(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if title != "halfadd" {
		t.Fatalf("title = %q, want kernel name", title)
	}
	var dot bytes.Buffer
	if err := g.WriteDOT(&dot, title); err != nil {
		t.Fatal(err)
	}
	out := dot.String()
	for _, frag := range []string{"digraph", "halfadd", "a", "b"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, out)
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, _, err := buildGraph("x.c", "aes"); err == nil {
		t.Fatal("both -in and -workload accepted")
	}
	if _, _, err := buildGraph("", ""); err == nil {
		t.Fatal("neither -in nor -workload accepted")
	}
	if _, _, err := buildGraph("", "nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, _, err := buildGraph("/nonexistent/k.c", ""); err == nil {
		t.Fatal("missing kernel file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte("int main() { return 0; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := buildGraph(bad, ""); err == nil {
		t.Fatal("unparsable kernel accepted")
	}
}
