// Command sherlock-exp regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	sherlock-exp -exp table2|fig2b|fig6|fig7|mc|resynth|analytics|all
//	             [-quick] [-parallel N] [-fig6-size 256]
//	             [-fig7-sizes 128,256,512,1024] [-resynth-size 512] [-rows N]
//
// -exp resynth runs the synthesis↔scheduling co-optimization ablation
// (Algorithm 2 alone vs balance-only vs the full pass portfolio); it is
// opt-in and not part of -exp all because the search compiles each
// workload many times.
//
// -exp analytics runs the streamed data-analytics campaign (bitmap-index
// COUNT and bit-serial filter+SUM over -rows rows, default one million):
// the deterministic tallies go to stdout, the stream/batch/CPU rows/sec
// comparison to stderr. Also opt-in: the million-row scans are a
// throughput measurement, not a paper artifact.
//
// -quick shrinks the kernels (2-round AES, small tiles) for fast runs;
// the default regenerates the full-scale campaign (complete AES-128),
// which takes a few minutes. -parallel bounds the campaign worker pool
// (default 0 = all cores); results are identical for every setting —
// grid cells are reassembled in paper order and Monte-Carlo streams are
// sharded by seed, not by worker.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sherlock/internal/device"
	"sherlock/internal/experiments"
	"sherlock/internal/profiling"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table2, fig2b, fig6, fig7, mc, resynth, analytics or all")
		quick      = flag.Bool("quick", false, "shrunken kernels for fast iteration")
		fig6Size   = flag.Int("fig6-size", 256, "array dimension for the Fig. 6 sweep")
		mcRuns     = flag.Int("mc-runs", 400, "fault-injected runs per Monte-Carlo validation row")
		fig7Sizes  = flag.String("fig7-sizes", "128,256,512,1024", "array dimensions for Fig. 7")
		resynSize  = flag.Int("resynth-size", 512, "array dimension for the resynthesis ablation")
		rows       = flag.Int("rows", 1_000_000, "table size for the analytics campaign")
		parallel   = flag.Int("parallel", 0, "campaign worker pool size (0 = all cores); results are identical for every setting")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sherlock-exp:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "sherlock-exp:", err)
		}
	}()

	setup := experiments.DefaultSetup()
	if *quick {
		setup = experiments.QuickSetup()
	}
	setup.Parallelism = *parallel
	r := experiments.NewRunner(setup)

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sherlock-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig2b", func() error {
		fmt.Print(experiments.RenderFig2b(experiments.Fig2b(device.Technologies())))
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2(r)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable2(rows))
		s := experiments.Summarize(rows)
		fmt.Printf("headline ratios: opt/naive latency %.2fx, energy %.2fx; naive MRA>=2 latency %.2fx\n",
			s.GeomeanLatencyGain, s.GeomeanEnergyGain, s.NaiveMRALatencyGain)
		return nil
	})
	run("fig6", func() error {
		series, err := experiments.Fig6(r, *fig6Size)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(series))
		gains := experiments.Fig6Summary(series)
		// Print in setup order: map iteration order would make otherwise
		// identical campaign outputs differ between runs.
		for _, tech := range setup.Techs {
			if gain, ok := gains[tech]; ok {
				fmt.Printf("opt P_app improvement on %v: %.2fx (geomean over the sweep)\n", tech, gain)
			}
		}
		return nil
	})
	run("mc", func() error {
		var rows []experiments.MCResult
		start := time.Now()
		for _, tech := range []device.Technology{device.ReRAM, device.STTMRAM} {
			mc, err := experiments.MonteCarlo(r, experiments.Bitweaving, tech, *fig6Size, *mcRuns, 7)
			if err != nil {
				return err
			}
			rows = append(rows, mc)
		}
		elapsed := time.Since(start)
		fmt.Print(experiments.RenderMC(rows))
		// Timing goes to stderr: stdout stays byte-identical across runs
		// and -parallel settings (the determinism contract diffs it).
		total := len(rows) * *mcRuns
		fmt.Fprintf(os.Stderr, "%d fault-injected runs in %v (%.0f runs/sec, pre-decoded executor)\n",
			total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
		return nil
	})
	run("fig7", func() error {
		sizes, err := parseSizes(*fig7Sizes)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig7(r, sizes)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig7(rows))
		return nil
	})
	// The resynthesis ablation is opt-in only (-exp resynth): the
	// co-optimization search compiles each workload many times and is not
	// part of the paper's standard campaign, so "all" skips it.
	if *exp == "resynth" {
		run("resynth", func() error {
			start := time.Now()
			rows, err := experiments.Resynth(r, device.STTMRAM, *resynSize)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			fmt.Print(experiments.RenderResynth(rows))
			// Timing goes to stderr: stdout stays byte-identical across
			// runs and -parallel settings.
			fmt.Fprintf(os.Stderr, "resynthesis search completed in %v\n", elapsed.Round(time.Millisecond))
			return nil
		})
	}
	// The analytics campaign is opt-in too (-exp analytics): it is a
	// wall-clock throughput measurement over millions of rows, not one of
	// the paper's deterministic artifacts.
	if *exp == "analytics" {
		run("analytics", func() error {
			cfg := experiments.DefaultAnalyticsConfig()
			cfg.Rows = *rows
			if *quick {
				cfg.Rows = min(cfg.Rows, 100_000)
			}
			cfg.Parallelism = *parallel
			res, err := experiments.Analytics(cfg, time.Now)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAnalytics(res))
			// Throughput varies run to run: stderr keeps stdout diffable.
			fmt.Fprint(os.Stderr, experiments.RenderAnalyticsTiming(res))
			return nil
		})
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
