// Streaming-pipeline benchmarks: the million-row analytics throughput
// comparison (streamed fused-COUNT vs one materializing RunBatchWords
// pass vs host-reduced), the steady-state allocation proof, and the
// pipeline-overlap ablation. BenchmarkRunStream/stream is the BENCH_8
// headline number.
package sherlock_test

import (
	"fmt"
	"math/bits"
	"testing"

	"sherlock"
	"sherlock/internal/workloads/analytics"
)

const streamBenchRows = 1_000_000

// compileScanBench builds the default bitmap-index COUNT plan and its
// million-row packed input block.
func compileScanBench(b *testing.B) (*sherlock.Compiled, []uint64) {
	b.Helper()
	plan := analytics.DefaultScanConfig()
	g, err := analytics.BuildScan(plan)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sherlock.CompileGraph(g, sherlock.Options{Tech: sherlock.ReRAM, ArraySize: 128})
	if err != nil {
		b.Fatal(err)
	}
	in, err := analytics.PackedData(c.InputNames(), "col", streamBenchRows, 42)
	if err != nil {
		b.Fatal(err)
	}
	return c, in
}

// BenchmarkRunStream is the million-row bitmap-index COUNT plan end to
// end. The stream variant must hold 0 allocs/op in steady state (warmed
// Streamer + sink) and beat the batch variant's rows/sec — the streaming
// layer's acceptance bar.
func BenchmarkRunStream(b *testing.B) {
	c, in := compileScanBench(b)

	b.Run("stream", func(b *testing.B) {
		s, err := c.NewStreamer(sherlock.StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		var sink sherlock.CountSink
		// Warm machines, channels and sink accumulators out of the
		// measured (and allocation-counted) region.
		if err := s.Run(in, streamBenchRows, &sink); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Run(in, streamBenchRows, &sink); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(streamBenchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows_per_sec")
		b.ReportMetric(float64(sink.Counts[0]), "matches")
	})

	b.Run("batch", func(b *testing.B) {
		// The non-streaming path on the same plan: one RunBatchWords pass
		// materializing the match bitmap, host popcount to finish.
		var out []uint64
		var err error
		var count int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err = c.RunBatchWords(in, streamBenchRows, out, 0)
			if err != nil {
				b.Fatal(err)
			}
			count = 0
			for _, w := range out[:(streamBenchRows+63)/64] {
				count += int64(bits.OnesCount64(w))
			}
		}
		b.ReportMetric(float64(streamBenchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows_per_sec")
		b.ReportMetric(float64(count), "matches")
	})
}

// BenchmarkRunStreamAblation isolates what the stage overlap buys: the
// same chunk width and shard count, pipelined vs serialized stages.
func BenchmarkRunStreamAblation(b *testing.B) {
	c, in := compileScanBench(b)
	for _, serial := range []bool{false, true} {
		name := "pipelined"
		if serial {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			s, err := c.NewStreamer(sherlock.StreamOptions{Serial: serial})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var sink sherlock.CountSink
			if err := s.Run(in, streamBenchRows, &sink); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run(in, streamBenchRows, &sink); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(streamBenchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows_per_sec")
		})
	}
}

// BenchmarkStreamChunkWidth sweeps the chunk width: the per-micro-op
// dispatch amortization is the single biggest lever on a small kernel, so
// this documents why the auto-sizer prefers wide chunks.
func BenchmarkStreamChunkWidth(b *testing.B) {
	c, in := compileScanBench(b)
	for _, words := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("words%d", words), func(b *testing.B) {
			s, err := c.NewStreamer(sherlock.StreamOptions{ChunkLanes: words * 64})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var sink sherlock.CountSink
			if err := s.Run(in, streamBenchRows, &sink); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run(in, streamBenchRows, &sink); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(streamBenchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows_per_sec")
		})
	}
}
