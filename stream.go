package sherlock

// Streaming execution: the facade over internal/sim's chunked pipeline.
// RunStream makes arbitrarily large packed inputs a first-class fast path —
// the input block is split into cache-sized chunks, each chunk flows
// through a pack → execute → reduce pipeline on pooled wide ExecMachines,
// and fused word-level reduction sinks (popcount-accumulate, any/all,
// select-mask gather, bit-plane sums) answer aggregate queries without
// ever materializing full output bitmaps.

import (
	"fmt"
	"math/bits"
	"sync"

	"sherlock/internal/sim"
)

// StreamOptions configures RunStream / NewStreamer.
type StreamOptions struct {
	// Parallelism is the shard count — concurrent chunk pipelines, each
	// with its own machines (0 = runtime.GOMAXPROCS(0)).
	Parallelism int
	// ChunkLanes overrides the chunk width; it must be a multiple of 64.
	// 0 auto-sizes so one chunk's machine state stays cache-resident
	// (wide chunks for small kernels, batch-width for huge ones).
	ChunkLanes int
	// Serial disables the pack/exec/reduce stage overlap within each
	// shard — the ablation and debugging mode; results are identical.
	Serial bool
}

// streamGeom is the run geometry handed to a sink at begin/end.
type streamGeom struct {
	lanes      int
	chunkLanes int
	chunks     int
	shards     int
	outNames   []string
}

func (g streamGeom) numOut() int { return len(g.outNames) }

// StreamSink consumes the output words of streamed chunks. A sink sees raw
// 64-lane words (dead lanes masked to zero), never per-lane values — that
// is what keeps aggregate queries at memory-bandwidth cost. consume may be
// called concurrently for different shards, never concurrently for one
// shard, and chunks arrive in arbitrary order; every provided sink folds
// shard- or chunk-local state so results are deterministic regardless of
// scheduling. The interface is sealed (unexported methods): the provided
// sinks — BitmapSink, CountSink, AnySink, AllSink, SelectSink,
// SumBitsSink — cover materialization and the fused reductions.
type StreamSink interface {
	// begin prepares for a run; implementations reuse prior allocations,
	// so a warmed sink adds nothing to the steady-state allocation count.
	begin(g streamGeom) error
	// consume folds one executed chunk: out is output-major with stride
	// cw = ceil(lanes/64); word w of output o is out[o*cw+w] and carries
	// lanes startLane+64w .. startLane+64w+63.
	consume(shard, chunk, startLane, lanes int, out []uint64, cw int) error
	// end merges per-shard/per-chunk state into the published fields.
	end(g streamGeom) error
}

// Streamer is a reusable streaming pipeline over one compiled program:
// machines, stage goroutines and scratch persist across Run calls, so the
// steady state allocates nothing. One Run executes at a time (calls
// serialize). Close releases the pipeline's goroutines; RunStream is the
// build-run-close convenience for one-shot calls.
type Streamer struct {
	c   *Compiled
	st  *sim.Stream
	fns struct {
		pack   sim.PackFunc
		reduce sim.ReduceFunc
	}

	numIn     int
	outNames  []string
	outPlaces []Place
	outbufs   [][]uint64 // per shard: numOut * chunk words

	mu   sync.Mutex
	in   []uint64
	inW  int
	sink StreamSink
}

// NewStreamer builds a reusable streaming pipeline. The caller must Close
// it when done.
func (c *Compiled) NewStreamer(opts StreamOptions) (*Streamer, error) {
	ex, err := c.exec()
	if err != nil {
		return nil, err
	}
	outNames, outPlaces, err := c.outputs()
	if err != nil {
		return nil, err
	}
	cfg := sim.StreamConfig{Shards: opts.Parallelism, Serial: opts.Serial}
	if opts.ChunkLanes != 0 {
		if opts.ChunkLanes < sim.WordLanes || opts.ChunkLanes%sim.WordLanes != 0 {
			return nil, fmt.Errorf("sherlock: ChunkLanes %d is not a positive multiple of %d", opts.ChunkLanes, sim.WordLanes)
		}
		cfg.BlockWords = opts.ChunkLanes / sim.WordLanes
	}
	st, err := sim.NewStream(ex, cfg)
	if err != nil {
		return nil, err
	}
	s := &Streamer{
		c:         c,
		st:        st,
		numIn:     len(c.inputNames()),
		outNames:  outNames,
		outPlaces: outPlaces,
	}
	cw := st.BlockWords()
	s.outbufs = make([][]uint64, st.Shards())
	for i := range s.outbufs {
		s.outbufs[i] = make([]uint64, len(outPlaces)*cw)
	}
	// The pack/reduce closures bind once so Run stores only data fields.
	s.fns.pack = s.packChunk
	s.fns.reduce = s.reduceChunk
	return s, nil
}

// ChunkLanes returns the pipeline's chunk width in lanes.
func (s *Streamer) ChunkLanes() int { return s.st.ChunkLanes() }

// Shards returns the concurrent chunk-pipeline count.
func (s *Streamer) Shards() int { return s.st.Shards() }

// Close releases the pipeline goroutines. Idempotent.
func (s *Streamer) Close() { s.st.Close() }

// Run streams lanes packed input vectors (RunBatchWords slot-major layout,
// stride ceil(lanes/64)) through the pipeline into sink. A warmed
// Streamer+sink pair runs with zero allocations.
func (s *Streamer) Run(in []uint64, lanes int, sink StreamSink) error {
	if lanes <= 0 {
		return fmt.Errorf("sherlock: RunStream needs at least one lane, got %d", lanes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	W := laneWords(lanes)
	if len(in) < s.numIn*W {
		return fmt.Errorf("sherlock: input block has %d words, need %d (%d inputs x %d lane words)",
			len(in), s.numIn*W, s.numIn, W)
	}
	chunk := s.st.ChunkLanes()
	g := streamGeom{
		lanes:      lanes,
		chunkLanes: chunk,
		chunks:     (lanes + chunk - 1) / chunk,
		shards:     s.st.Shards(),
		outNames:   s.outNames,
	}
	if err := sink.begin(g); err != nil {
		return err
	}
	s.in, s.inW, s.sink = in, W, sink
	err := s.st.Run(lanes, s.fns.pack, s.fns.reduce)
	s.in, s.sink = nil, nil
	if err != nil {
		return err
	}
	return sink.end(g)
}

// packChunk copies the chunk's slice of the caller's slot-major block into
// the machine's input scratch — the only per-lane input cost on the
// streaming path (no maps, no per-vector decode).
func (s *Streamer) packChunk(m *sim.ExecMachine, chunk, start, lanes int) error {
	w0 := start / sim.WordLanes // chunk starts are word-aligned
	gw := laneWords(lanes)
	in := m.InputBlock()
	B := m.BlockWords()
	for slot := 0; slot < s.numIn; slot++ {
		copy(in[slot*B:slot*B+gw], s.in[slot*s.inW+w0:slot*s.inW+w0+gw])
	}
	return nil
}

// reduceChunk reads the chunk's output words into the shard's scratch and
// hands them to the sink.
func (s *Streamer) reduceChunk(shard int, m *sim.ExecMachine, chunk, start, lanes int) error {
	cw := laneWords(lanes)
	buf := s.outbufs[shard]
	for oi, p := range s.outPlaces {
		if _, err := m.OutWords(p, buf[oi*cw:oi*cw+cw]); err != nil {
			return err
		}
	}
	return s.sink.consume(shard, chunk, start, lanes, buf[:len(s.outPlaces)*cw], cw)
}

// RunStream streams lanes packed input vectors through a chunked
// pack→execute→reduce pipeline into sink — the large-batch fast path. It
// builds a one-shot pipeline; callers running many streams over the same
// program should hold a NewStreamer instead (zero steady-state
// allocations). Outputs are bit-identical to RunBatchWords whatever the
// chunking, sharding or overlap mode.
func (c *Compiled) RunStream(in []uint64, lanes int, sink StreamSink, opts StreamOptions) error {
	s, err := c.NewStreamer(opts)
	if err != nil {
		return err
	}
	defer s.Close()
	return s.Run(in, lanes, sink)
}

// liveMask returns the live-lane mask of chunk word b for a chunk of
// `lanes` lanes spanning cw words.
func liveMask(lanes, cw, b int) uint64 {
	if b < cw-1 {
		return ^uint64(0)
	}
	if rem := lanes % sim.WordLanes; rem != 0 {
		return uint64(1)<<uint(rem) - 1
	}
	return ^uint64(0)
}

// BitmapSink materializes every output bitmap in RunBatchWords layout:
// after a run, Out is output-major with stride W = ceil(lanes/64), word
// out[o*W+w] carrying output o of lanes 64w..64w+63, dead lanes zero. Out
// is reused when its capacity suffices — the streaming replacement for
// RunBatchWords' output block. Shards write disjoint word ranges, so no
// merge step exists.
type BitmapSink struct {
	Out []uint64

	w int // run stride, set at begin
}

func (k *BitmapSink) begin(g streamGeom) error {
	k.w = (g.lanes + 63) / 64
	need := g.numOut() * k.w
	if cap(k.Out) < need {
		k.Out = make([]uint64, need)
	} else {
		k.Out = k.Out[:need]
	}
	return nil
}

func (k *BitmapSink) consume(shard, chunk, start, lanes int, out []uint64, cw int) error {
	w0 := start / 64
	for o := 0; o*cw < len(out); o++ {
		copy(k.Out[o*k.w+w0:o*k.w+w0+cw], out[o*cw:(o+1)*cw])
	}
	return nil
}

func (k *BitmapSink) end(streamGeom) error { return nil }

// CountSink is the popcount-accumulate reduction: after a run, Counts[o]
// is how many lanes set output o (OutputNames order) — COUNT(*) over a
// bitmap-index plan without materializing the match bitmap.
type CountSink struct {
	Counts []int64

	shard [][]int64
}

func (k *CountSink) begin(g streamGeom) error {
	k.Counts = resizeI64(k.Counts, g.numOut())
	k.shard = resizeShardsI64(k.shard, g.shards, g.numOut())
	return nil
}

func (k *CountSink) consume(shard, chunk, start, lanes int, out []uint64, cw int) error {
	acc := k.shard[shard]
	for o := range acc {
		n := 0
		for _, w := range out[o*cw : (o+1)*cw] {
			n += bits.OnesCount64(w)
		}
		acc[o] += int64(n)
	}
	return nil
}

func (k *CountSink) end(streamGeom) error {
	for _, acc := range k.shard {
		for o, n := range acc {
			k.Counts[o] += n
		}
	}
	return nil
}

// AnySink reduces each output to EXISTS: Any[o] reports whether any lane
// set output o.
type AnySink struct {
	Any []bool

	shard [][]bool
}

func (k *AnySink) begin(g streamGeom) error {
	k.Any = resizeBool(k.Any, g.numOut(), false)
	k.shard = resizeShardsBool(k.shard, g.shards, g.numOut(), false)
	return nil
}

func (k *AnySink) consume(shard, chunk, start, lanes int, out []uint64, cw int) error {
	acc := k.shard[shard]
	for o := range acc {
		if acc[o] {
			continue
		}
		for _, w := range out[o*cw : (o+1)*cw] {
			if w != 0 {
				acc[o] = true
				break
			}
		}
	}
	return nil
}

func (k *AnySink) end(streamGeom) error {
	for _, acc := range k.shard {
		for o, v := range acc {
			if v {
				k.Any[o] = true
			}
		}
	}
	return nil
}

// AllSink reduces each output to FORALL: All[o] reports whether every lane
// set output o. Dead lanes do not count against it.
type AllSink struct {
	All []bool

	shard [][]bool
}

func (k *AllSink) begin(g streamGeom) error {
	k.All = resizeBool(k.All, g.numOut(), true)
	k.shard = resizeShardsBool(k.shard, g.shards, g.numOut(), true)
	return nil
}

func (k *AllSink) consume(shard, chunk, start, lanes int, out []uint64, cw int) error {
	acc := k.shard[shard]
	for o := range acc {
		if !acc[o] {
			continue
		}
		for b, w := range out[o*cw : (o+1)*cw] {
			if mask := liveMask(lanes, cw, b); w&mask != mask {
				acc[o] = false
				break
			}
		}
	}
	return nil
}

func (k *AllSink) end(streamGeom) error {
	for _, acc := range k.shard {
		for o, v := range acc {
			if !v {
				k.All[o] = false
			}
		}
	}
	return nil
}

// SelectSink is the select-mask gather: after a run, Rows holds the global
// lane indices whose Output bit (OutputNames index, default 0) is set, in
// ascending order — the row-ID list of a filter query. Matches gather into
// per-chunk buckets and concatenate in chunk order, so the result is
// deterministic whatever the scheduling; buckets and Rows reuse their
// capacity across runs.
type SelectSink struct {
	// Output selects which output drives the mask.
	Output int
	Rows   []int64

	buckets [][]int64
}

func (k *SelectSink) begin(g streamGeom) error {
	if k.Output < 0 || k.Output >= g.numOut() {
		return fmt.Errorf("sherlock: SelectSink output %d outside %d outputs", k.Output, g.numOut())
	}
	if cap(k.buckets) < g.chunks {
		old := k.buckets
		k.buckets = make([][]int64, g.chunks)
		copy(k.buckets, old)
	} else {
		k.buckets = k.buckets[:g.chunks]
	}
	for i := range k.buckets {
		k.buckets[i] = k.buckets[i][:0]
	}
	return nil
}

func (k *SelectSink) consume(shard, chunk, start, lanes int, out []uint64, cw int) error {
	bucket := k.buckets[chunk]
	for b, w := range out[k.Output*cw : (k.Output+1)*cw] {
		base := int64(start + b*64)
		for w != 0 {
			bucket = append(bucket, base+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	k.buckets[chunk] = bucket
	return nil
}

func (k *SelectSink) end(streamGeom) error {
	k.Rows = k.Rows[:0]
	for _, bucket := range k.buckets {
		k.Rows = append(k.Rows, bucket...)
	}
	return nil
}

// SumBitsSink folds selected outputs as the bit-planes of an unsigned
// value and accumulates their weighted popcount over all lanes:
//
//	Sum = Σ_i 2^i · popcount(output Planes[i])
//
// — the fused reduction behind bit-serial aggregate scans: a kernel that
// masks a value column's bit-planes with a filter predicate streams
// straight into SUM(value WHERE pred), no bitmap and no per-lane
// arithmetic. Planes lists output indices LSB first; nil selects every
// output in order. The caller bounds overflow: lanes · max value must fit
// uint64.
type SumBitsSink struct {
	Planes []int
	Sum    uint64

	planes []int
	shard  []uint64
}

func (k *SumBitsSink) begin(g streamGeom) error {
	if k.Planes == nil {
		k.planes = k.planes[:0]
		for o := 0; o < g.numOut(); o++ {
			k.planes = append(k.planes, o)
		}
	} else {
		k.planes = append(k.planes[:0], k.Planes...)
	}
	for _, o := range k.planes {
		if o < 0 || o >= g.numOut() {
			return fmt.Errorf("sherlock: SumBitsSink plane %d outside %d outputs", o, g.numOut())
		}
	}
	k.Sum = 0
	if cap(k.shard) < g.shards {
		k.shard = make([]uint64, g.shards)
	} else {
		k.shard = k.shard[:g.shards]
		clear(k.shard)
	}
	return nil
}

func (k *SumBitsSink) consume(shard, chunk, start, lanes int, out []uint64, cw int) error {
	var sum uint64
	for i, o := range k.planes {
		n := 0
		for _, w := range out[o*cw : (o+1)*cw] {
			n += bits.OnesCount64(w)
		}
		sum += uint64(n) << uint(i)
	}
	k.shard[shard] += sum
	return nil
}

func (k *SumBitsSink) end(streamGeom) error {
	for _, s := range k.shard {
		k.Sum += s
	}
	return nil
}

// resizeI64 returns a zeroed int64 slice of length n, reusing capacity.
func resizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeShardsI64(s [][]int64, shards, n int) [][]int64 {
	if cap(s) < shards {
		old := s
		s = make([][]int64, shards)
		copy(s, old)
	} else {
		s = s[:shards]
	}
	for i := range s {
		s[i] = resizeI64(s[i], n)
	}
	return s
}

// resizeBool returns a bool slice of length n filled with v, reusing
// capacity.
func resizeBool(s []bool, n int, v bool) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = v
	}
	return s
}

func resizeShardsBool(s [][]bool, shards, n int, v bool) [][]bool {
	if cap(s) < shards {
		old := s
		s = make([][]bool, shards)
		copy(s, old)
	} else {
		s = s[:shards]
	}
	for i := range s {
		s[i] = resizeBool(s[i], n, v)
	}
	return s
}
