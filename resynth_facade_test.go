package sherlock

import (
	"math/rand"
	"testing"
)

// windowKernel is the 2-bit range-detect kernel from the quickstart: enough
// XOR/MUX structure for the resynthesis loop to have real candidates.
const windowKernel = `
void window(word x1, word x0, word lo1, word lo0, word hi1, word hi0, word *hit) {
	word geLo = (x1 & ~lo1) | (~(x1 ^ lo1) & (x0 | ~lo0));
	word leHi = (hi1 & ~x1) | (~(hi1 ^ x1) & (hi0 | ~x0));
	*hit = geLo & leHi;
}`

// TestResynthesizeDifferential compiles the same kernel with and without
// co-optimization and drives both programs through the single-shot Machine
// path (Run) and the pre-decoded ExecMachine paths (RunBatch and
// RunBatchWords), demanding bit-identical outputs on random vectors.
func TestResynthesizeDifferential(t *testing.T) {
	opts := Options{Tech: STTMRAM, ArraySize: 128}
	base, err := CompileC(windowKernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Resynth != nil {
		t.Fatal("Resynth stats set without Options.Resynthesize")
	}
	opts.Resynthesize = true
	opt, err := CompileC(windowKernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Resynth == nil {
		t.Fatal("Options.Resynthesize set but no Resynth stats")
	}
	if rep := opt.Verify(); !rep.Clean() {
		t.Fatalf("resynthesized program has verifier findings: %v", rep)
	}

	names := base.InputNames()
	outNames := base.OutputNames()
	rng := rand.New(rand.NewSource(11))
	const lanes = 100
	batch := make([]map[string]bool, lanes)
	for i := range batch {
		in := make(map[string]bool, len(names))
		for _, n := range names {
			in[n] = rng.Intn(2) == 1
		}
		batch[i] = in
	}

	// Machine path: one vector at a time through both compilations.
	for i, in := range batch {
		want, err := base.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := opt.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range outNames {
			if got[n] != want[n] {
				t.Fatalf("Run vector %d output %q: optimized=%v baseline=%v", i, n, got[n], want[n])
			}
		}
	}

	// ExecMachine map path.
	wantBatch, err := base.RunBatch(batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := opt.RunBatch(batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		for _, n := range outNames {
			if gotBatch[i][n] != wantBatch[i][n] {
				t.Fatalf("RunBatch vector %d output %q: optimized=%v baseline=%v",
					i, n, gotBatch[i][n], wantBatch[i][n])
			}
		}
	}

	// ExecMachine packed-words path. Slot order is each compilation's own
	// InputNames/OutputNames — resynthesis may reorder them — so pack and
	// unpack per compilation and compare by name.
	W := (lanes + 63) / 64
	unpack := func(c *Compiled) map[string][]uint64 {
		in, n := packBatch(t, c.InputNames(), batch)
		words, err := c.RunBatchWords(in, n, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		byName := make(map[string][]uint64, len(outNames))
		for o, name := range c.OutputNames() {
			byName[name] = words[o*W : (o+1)*W]
		}
		return byName
	}
	wantWords, gotWords := unpack(base), unpack(opt)
	for _, name := range outNames {
		for i := range wantWords[name] {
			if gotWords[name][i] != wantWords[name][i] {
				t.Fatalf("RunBatchWords output %q word %d: optimized=%#x baseline=%#x",
					name, i, gotWords[name][i], wantWords[name][i])
			}
		}
	}
}

// TestResynthesizeNeverWorse pins the facade contract: with Resynthesize
// set, the compiled program's measured latency is never above the plain
// Algorithm 2 compilation of the same kernel and options.
func TestResynthesizeNeverWorse(t *testing.T) {
	opts := Options{Tech: STTMRAM, ArraySize: 128}
	base, err := CompileC(windowKernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resynthesize = true
	opt, err := CompileC(windowKernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := base.Cost()
	if err != nil {
		t.Fatal(err)
	}
	oc, err := opt.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if oc.LatencyNS > bc.LatencyNS {
		t.Fatalf("resynthesis made the kernel slower: %.1f ns > %.1f ns", oc.LatencyNS, bc.LatencyNS)
	}
	if opt.Resynth.Improved && len(opt.Program) >= len(base.Program) &&
		oc.LatencyNS >= bc.LatencyNS {
		t.Fatal("Improved reported but neither program size nor latency improved")
	}
}
